"""Figure 13: fio 4 KB IOPS across the four virtualization designs.

The paper reports ~6 % IOPS degradation for Tai Chi-vDP, ~25.7 % for
type-2 QEMU+KVM, and ~0.06 % for Tai Chi.
"""

from repro.experiments.common import overhead_pct, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import run_fio
from repro.workloads.background import start_cp_background

#: Reference arm first; ``run --arm`` swaps in any registry arms.
DEFAULT_ARMS = ("baseline", "taichi", "taichi-vdp", "type2")


@register("fig13", "fio IOPS under four virtualization designs", "Figure 13")
def run(scale=1.0, seed=0):
    duration = scaled_duration(60 * MILLISECONDS, scale)
    rows = []
    baseline_iops = None
    for arm in arms_under_test(DEFAULT_ARMS):
        deployment = build(arm, seed=seed, dp_kind="storage")
        start_cp_background(deployment, n_monitors=4, rolling_tasks=2)
        deployment.warmup()
        result = run_fio(deployment, duration)
        if baseline_iops is None:
            baseline_iops = result["iops"]
        rows.append({
            "system": arm,
            "iops": result["iops"],
            "bw_mbps": result["bw_mbps"],
            "overhead_pct": overhead_pct(result["iops"], baseline_iops),
        })
    overheads = {row["system"]: row["overhead_pct"] for row in rows}
    return ExperimentResult(
        exp_id="fig13",
        title="Storage IOPS across virtualization designs",
        paper_ref="Figure 13",
        rows=rows,
        derived=overheads,
        paper={
            "taichi_overhead_pct": 0.06,
            "taichi-vdp_overhead_pct": 6.0,
            "type2_overhead_pct": 25.7,
        },
    )
