"""Fleet scale-out: Tai Chi vs. the static partition, fleet-wide (extension).

The paper's production claim (Section 6.6) is fleet-level: three years
across a hyperscale deployment with no I/O SLO violations while VM
startups recovered.  Every other experiment here scores one board; this
one scores a *fleet* through :mod:`repro.fleet` — two homogeneous fleets
over identical node ids (so both arms draw identical per-node seeds and
traffic), one running Tai Chi with Section 8's inverse adaptation (two
CP pCPUs reassigned to the data plane), one running the static 8 DP /
4 CP partition.

The load is deliberately the regime the paper says hyperscale operators
live in: spiky DP traffic offered at half the *nominal* partition's
capacity (the same total traffic hits both arms — capacity differences
show up as latency, not offered work) plus a dense VM-creation storm.
Tai Chi must win both fleet-wide SLOs:

* DP: pooled p99 probe latency and DP SLO attainment (queueing behind a
  saturated 8-CPU partition vs. 10 CPUs plus microsecond CP preemption);
* CP: VM-startup SLO attainment, where startups still pending past the
  SLO count as violations (a saturated control plane must not score
  100 % by finishing almost nothing).
"""

from repro.experiments.common import scaled_count, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.sim.units import MILLISECONDS

_BASE_DURATION_NS = 600 * MILLISECONDS
_BASE_DRAIN_NS = 300 * MILLISECONDS
# The startup SLO is 250 ms; the window must cover several SLOs or
# overdue-pending accounting (and thus attainment) degenerates.
_MIN_DURATION_NS = 350 * MILLISECONDS
_MIN_DRAIN_NS = 200 * MILLISECONDS
_BASE_NODES = 3

_MIX = {
    "dp_utilization": 0.50,
    "vm_period_ms": 50.0,
    "vm_batch_min": 5,
    "vm_batch_max": 10,
    "vm_vblks": 5,
}


def _arm(name, deployment, dp_boost, n_nodes, duration_ms, drain_ms, seed):
    # Imported here, not at module top: repro.fleet.report renders with the
    # experiment harness's table formatter, so a module-level import would
    # be circular (experiments package init -> this module -> repro.fleet
    # -> repro.experiments.report).
    from repro.fleet import run_fleet, uniform_spec

    spec = uniform_spec(
        name, deployment, n_nodes, seed=seed, duration_ms=duration_ms,
        drain_ms=drain_ms, dp_slo_us=300.0, traffic="spiky",
        dp_boost=dp_boost, **_MIX)
    report = run_fleet(spec, jobs=1)
    fleet = report["aggregate"]["fleet"]
    return {
        "system": deployment,
        "nodes": fleet["nodes"],
        "dp_p99_us": fleet["dp_latency_us"].get("p99", 0.0),
        "dp_slo_pct": fleet["dp_slo_attainment_pct"],
        "vms_started": fleet["vms_started"],
        "vms_requested": fleet["vms_requested"],
        "startup_slo_pct": fleet["startup_slo_attainment_pct"],
        "startup_p50_ms": fleet["startup_ms"].get("p50", 0.0),
    }


@register("ext_fleet_scale", "Fleet-wide SLOs: Tai Chi vs. static partition",
          "Section 6.6 / extension")
def run(scale=1.0, seed=0):
    duration_ms = scaled_duration(_BASE_DURATION_NS, scale,
                                  floor_ns=_MIN_DURATION_NS) / MILLISECONDS
    drain_ms = scaled_duration(_BASE_DRAIN_NS, scale,
                               floor_ns=_MIN_DRAIN_NS) / MILLISECONDS
    n_nodes = scaled_count(_BASE_NODES, min(scale, 1.0), floor=2)
    static = _arm("fleet-static", "static", 0, n_nodes,
                  duration_ms, drain_ms, seed)
    taichi = _arm("fleet-taichi", "taichi", 2, n_nodes,
                  duration_ms, drain_ms, seed)
    rows = [static, taichi]
    return ExperimentResult(
        exp_id="ext_fleet_scale",
        title="Fleet scale-out: both SLOs, fleet-wide",
        paper_ref="Section 6.6 / extension",
        rows=rows,
        derived={
            "fleet_dp_p99_improvement":
                static["dp_p99_us"] / max(taichi["dp_p99_us"], 1e-9),
            "taichi_dp_slo_pct": taichi["dp_slo_pct"],
            "static_dp_slo_pct": static["dp_slo_pct"],
            "taichi_startup_slo_pct": taichi["startup_slo_pct"],
            "static_startup_slo_pct": static["startup_slo_pct"],
            "startup_attainment_gain_pct":
                taichi["startup_slo_pct"] - static["startup_slo_pct"],
        },
        paper={
            "claim": (
                "fleet-wide production deployment: no I/O SLO violations, "
                "VM startups recovered (3.1x at high density)"
            ),
        },
    )
