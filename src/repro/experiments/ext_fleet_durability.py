"""Fleet durability: containment, retry and resume under injected faults.

The production story behind Section 6.6 is not just scale — it is that a
hyperscale fleet *keeps reporting* when individual boards misbehave.
This extension scores the durability layer itself, with the fleet's
chaos hooks standing in for flaky hosts:

* one node (``node-03``) fails **every** attempt — it must land in the
  aggregate's ``failed_nodes`` table, flip ``degraded`` on, and shrink
  the coverage fraction without touching the survivors' numbers;
* one node (``node-01``) fails only its first attempt — the
  :class:`~repro.fleet.durability.RetryPolicy` must recover it, and
  because retries re-run from the same derived seed, its summary must be
  byte-identical to the same node's summary in a chaos-free fleet;
* the same degraded fleet is then "interrupted" (a prefix subset run
  journaled into a checkpoint dir) and resumed — the resumed canonical
  JSON must be byte-identical to the uninterrupted run's.

All three properties are exact (booleans, not tolerances): durability
must never change *what* a fleet computes, only whether it survives
computing it.
"""

import dataclasses
import json
import os
import tempfile

from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.sim.units import MILLISECONDS

_BASE_DURATION_NS = 400 * MILLISECONDS
_BASE_DRAIN_NS = 200 * MILLISECONDS
_MIN_DURATION_NS = 100 * MILLISECONDS
_MIN_DRAIN_NS = 50 * MILLISECONDS
_N_NODES = 4
_PERMANENT = "node-03"
_TRANSIENT = "node-01"
_INTERRUPT_AFTER = 2   # nodes journaled before the emulated interruption


def _canonical_json(report):
    from repro.fleet import canonical_report

    return json.dumps(canonical_report(report), sort_keys=True)


def _spec(duration_ms, drain_ms, seed, chaos):
    # Late import for the same reason as ext_fleet_scale: repro.fleet's
    # report rendering pulls the experiment harness's table formatter.
    from repro.fleet import uniform_spec

    spec = uniform_spec(
        "fleet-durability", "taichi", _N_NODES, seed=seed,
        duration_ms=duration_ms, drain_ms=drain_ms, dp_slo_us=300.0,
        traffic="bursty", dp_utilization=0.30, vm_period_ms=120.0)
    return dataclasses.replace(
        spec, nodes=list(spec.nodes), chaos=chaos,
        retry={"max_attempts": 2} if chaos else None)


def _node_rows(report):
    survivors = {node["node_id"]: node for node in report["nodes"]}
    aggregate = report["aggregate"]
    failed = {failure["node_id"]: failure
              for failure in aggregate.get("failed_nodes", [])}
    retried = report["timing"].get("retried", {})
    rows = []
    for node_id in sorted(set(survivors) | set(failed)):
        if node_id in survivors:
            node = survivors[node_id]
            rows.append({
                "node": node_id,
                "outcome": "ok",
                "attempts": retried.get(node_id, 1),
                "kind": "-",
                "dp_p99_us": node["dp_latency_us"].get("p99", 0.0),
                "dp_slo_pct": node["dp_slo_attainment_pct"],
            })
        else:
            failure = failed[node_id]
            rows.append({
                "node": node_id,
                "outcome": "FAILED",
                "attempts": failure["attempts"],
                "kind": failure["kind"],
                "dp_p99_us": None,
                "dp_slo_pct": None,
            })
    return rows


@register("ext_fleet_durability",
          "Fleet durability: containment, retry, checkpoint/resume",
          "Section 6.6 / extension")
def run(scale=1.0, seed=0):
    from repro.fleet import FleetRunner

    duration_ms = scaled_duration(_BASE_DURATION_NS, scale,
                                  floor_ns=_MIN_DURATION_NS) / MILLISECONDS
    drain_ms = scaled_duration(_BASE_DRAIN_NS, scale,
                               floor_ns=_MIN_DRAIN_NS) / MILLISECONDS
    chaos = {_PERMANENT: -1, _TRANSIENT: 1}
    spec = _spec(duration_ms, drain_ms, seed, chaos)

    # Arm 1: the degraded fleet, uninterrupted.  The permanent failer
    # exhausts its attempts; the transient one recovers on retry.
    degraded = FleetRunner(spec, scale=scale, allow_failures=True).run()
    aggregate = degraded["aggregate"]
    coverage = aggregate.get("coverage", {})
    failed_ids = sorted(failure["node_id"]
                        for failure in aggregate.get("failed_nodes", []))
    survivor_ids = sorted(node["node_id"] for node in degraded["nodes"])
    retried = degraded["timing"].get("retried", {})

    # Arm 2: retry purity — the recovered node's summary must match the
    # same node's summary in a fleet that never saw chaos.
    clean = FleetRunner(_spec(duration_ms, drain_ms, seed, None),
                        scale=scale).run()
    clean_by_id = {node["node_id"]: node for node in clean["nodes"]}
    degraded_by_id = {node["node_id"]: node for node in degraded["nodes"]}
    retry_identical = (
        _TRANSIENT in degraded_by_id
        and json.dumps(degraded_by_id[_TRANSIENT], sort_keys=True)
        == json.dumps(clean_by_id[_TRANSIENT], sort_keys=True))

    # Arm 3: interrupt + resume.  A prefix subset journals into the
    # checkpoint dir (per-node fingerprints make its entries valid for
    # the full spec), then the full degraded fleet resumes from it.
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_dir = os.path.join(tmp, "ckpt")
        FleetRunner(spec.subset(_INTERRUPT_AFTER), scale=scale,
                    checkpoint_dir=checkpoint_dir,
                    allow_failures=True).run()
        resumed = FleetRunner(spec, scale=scale,
                              checkpoint_dir=checkpoint_dir, resume=True,
                              allow_failures=True).run()
    resume_identical = _canonical_json(resumed) == _canonical_json(degraded)
    resumed_count = len(resumed["timing"].get("resumed_nodes", []))

    return ExperimentResult(
        exp_id="ext_fleet_durability",
        title="Fleet durability: degraded completion and exact resume",
        paper_ref="Section 6.6 / extension",
        rows=_node_rows(degraded),
        derived={
            "degraded": bool(aggregate.get("degraded")),
            "coverage_fraction": coverage.get("fraction", 1.0),
            "failed_nodes": len(failed_ids),
            "permanent_contained": failed_ids == [_PERMANENT],
            "transient_recovered": _TRANSIENT in survivor_ids,
            "transient_attempts": retried.get(_TRANSIENT, 1),
            "retry_summary_identical": retry_identical,
            "resume_identical": resume_identical,
            "resumed_nodes": resumed_count,
        },
        paper={
            "claim": (
                "fleet-wide production deployment keeps its SLO accounting "
                "through individual board failures (Section 6.6: three "
                "years, no fleet-wide I/O SLO violations)"
            ),
        },
    )
