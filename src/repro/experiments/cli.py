"""Command-line interface for the experiment harness."""

import argparse
import json
import os
import sys
import time


def _expand_capture_paths(paths):
    """Expand directories to their sorted ``*.jsonl`` captures."""
    expanded = []
    for path in paths:
        if os.path.isdir(path):
            expanded.extend(sorted(
                os.path.join(path, name) for name in os.listdir(path)
                if name.endswith(".jsonl")))
        else:
            expanded.append(path)
    return expanded


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="taichi-experiments",
        description="Reproduce the Tai Chi paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("exp_id", help="experiment id, e.g. fig11, or 'all'")
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="duration/size scale factor (default 1.0)")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument("--out", default=None,
                            help="also append the report to this file")
    run_parser.add_argument("--trace", default=None, metavar="PATH",
                            help="write a Chrome trace-event JSON file "
                                 "(open in Perfetto / chrome://tracing)")
    run_parser.add_argument("--jsonl", default=None, metavar="PATH",
                            help="write raw trace events as JSON lines")
    run_parser.add_argument("--metrics", default=None, metavar="PATH",
                            help="write a metrics-registry snapshot as JSON")
    run_parser.add_argument("--check-invariants", action="store_true",
                            help="verify causal invariants (IPI delivery, "
                                 "slice pairing, ...) inline during the run; "
                                 "exit 1 on any violation")
    run_parser.add_argument("--faults", default=None, metavar="SPEC",
                            help="inject faults into every deployment the "
                                 "experiment builds: a preset name (storm, "
                                 "ipi_storm, probe_outage) or a FaultPlan "
                                 "JSON file; scaled along with --scale")
    run_parser.add_argument("--arm", default=None, metavar="NAME[,NAME...]",
                            help="override the scheduler arms the experiment "
                                 "compares (registry names, e.g. "
                                 "baseline,taichi; reference arm first)")
    run_parser.add_argument("--spans", action="store_true",
                            help="emit causal request spans (span.begin/"
                                 "span.end) for VM startups and DP packets; "
                                 "analyze --critical-path and trace-request "
                                 "consume them from --jsonl captures")

    soak_parser = sub.add_parser(
        "soak",
        help="run the shared production-soak driver on one scenario "
             "(arm name or Scenario JSON path) and print its summary")
    soak_parser.add_argument(
        "scenario", help="arm name (taichi, baseline, ...) or a Scenario "
                         "JSON file")
    soak_parser.add_argument("--scale", type=float, default=1.0,
                             help="scale the soak duration and any fault "
                                  "plan (default 1.0)")
    soak_parser.add_argument("--seed", type=int, default=0)
    soak_parser.add_argument("--duration-ms", type=float, default=400.0,
                             help="soak window before drain (default 400)")
    soak_parser.add_argument("--drain-ms", type=float, default=200.0,
                             help="drain window for in-flight startups "
                                  "(default 200)")
    soak_parser.add_argument("--dp-slo-us", type=float, default=300.0,
                             help="DP probe latency SLO (default 300us)")
    soak_parser.add_argument("--json", default=None, metavar="PATH",
                             help="also write the full summary as JSON")
    soak_parser.add_argument("--spans", action="store_true",
                             help="trace causal request spans and report "
                                  "per-channel tail exemplars with "
                                  "critical-path attribution")
    soak_parser.add_argument("--check-invariants", action="store_true",
                             help="verify causal invariants inline (on "
                                  "multi-tenant scenarios this includes the "
                                  "isolation invariants and the summary's "
                                  "grant-ledger books); exit 1 on any "
                                  "violation")

    analyze_parser = sub.add_parser(
        "analyze",
        help="profile JSONL trace captures (scheduling latency, switch "
             "costs, IPI latency) and check causal invariants")
    analyze_parser.add_argument(
        "paths", nargs="+",
        help="JSONL captures from run --jsonl / fleet --capture-dir; "
             "directories expand to their *.jsonl files")
    analyze_parser.add_argument("--json", default=None, metavar="PATH",
                                help="also write the full report as JSON")
    analyze_parser.add_argument("--no-invariants", action="store_true",
                                help="skip the invariant checkers")
    analyze_parser.add_argument("--critical-path", action="store_true",
                                help="reconstruct span trees from the "
                                     "capture and report per-channel "
                                     "critical-path segment shares and "
                                     "tail exemplars (needs a --spans run)")

    trace_req_parser = sub.add_parser(
        "trace-request",
        help="render one request's span-tree waterfall (critical-path "
             "segments over time) from a JSONL capture")
    trace_req_parser.add_argument(
        "capture", help="JSONL capture from a --spans run")
    trace_req_parser.add_argument(
        "request_id", help="request id, e.g. pkt-182 or vm7 (analyze "
                           "--critical-path lists exemplar ids)")

    validate_parser = sub.add_parser(
        "validate", help="run all experiments and check the paper's shapes")
    validate_parser.add_argument("--scale", type=float, default=1.0)
    validate_parser.add_argument("--seed", type=int, default=0)
    validate_parser.add_argument("--jobs", type=int, default=1,
                                 help="experiments to run in parallel "
                                      "(default 1: serial)")
    validate_parser.add_argument("--out", default=None,
                                 help="write an EXPERIMENTS.md-style report")
    validate_parser.add_argument("--only", default=None,
                                 help="comma-separated experiment ids")

    fleet_parser = sub.add_parser(
        "fleet",
        help="simulate a multi-board fleet scenario across a process pool "
             "and report fleet-wide SLOs")
    fleet_parser.add_argument(
        "spec", help="preset name (rack, pod) or FleetSpec JSON path")
    fleet_parser.add_argument("--jobs", type=int, default=1,
                              help="node simulations to run in parallel")
    fleet_parser.add_argument("--scale", type=float, default=1.0,
                              help="scale per-node durations and fault "
                                   "plans (default 1.0)")
    fleet_parser.add_argument("--seed", type=int, default=None,
                              help="override the spec's root seed")
    fleet_parser.add_argument("--nodes", type=int, default=None, metavar="N",
                              help="simulate only the spec's first N nodes")
    fleet_parser.add_argument("--out", default=None, metavar="PATH",
                              help="write a markdown fleet report")
    fleet_parser.add_argument("--json", default=None, metavar="PATH",
                              help="write the canonical (deterministic) "
                                   "JSON report")
    fleet_parser.add_argument("--capture-dir", default=None, metavar="DIR",
                              help="write one JSONL trace capture per node "
                                   "(feed the directory to 'analyze')")
    fleet_parser.add_argument("--check-invariants", action="store_true",
                              help="check causal invariants on every node; "
                                   "exit 1 on any violation")
    fleet_parser.add_argument("--telemetry-dir", default=None, metavar="DIR",
                              help="write one interval snapshot series per "
                                   "node plus merged.jsonl and "
                                   "fleet.openmetrics")
    fleet_parser.add_argument("--telemetry-interval-ms", type=float,
                              default=None, metavar="MS",
                              help="override the spec's snapshot cadence")
    fleet_parser.add_argument("--raw-samples", action="store_true",
                              help="ship raw per-node sample arrays instead "
                                   "of mergeable quantile sketches (the "
                                   "pre-sketch wire format)")
    fleet_parser.add_argument("--spans", action="store_true",
                              help="trace causal request spans on every "
                                   "node; summaries carry tail exemplars "
                                   "and the aggregate a fleet-wide "
                                   "worst-request table ('top' renders it)")
    fleet_parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                              help="journal each node's outcome as it "
                                   "completes (atomic per-node JSON); an "
                                   "interrupted run continues with --resume")
    fleet_parser.add_argument("--resume", action="store_true",
                              help="skip nodes already journaled in "
                                   "--checkpoint-dir; the resumed run's "
                                   "final JSON is byte-identical to an "
                                   "uninterrupted one")
    fleet_parser.add_argument("--allow-failures", action="store_true",
                              help="exit 0 with a degraded report when "
                                   "nodes fail terminally (default: render "
                                   "the degraded report and exit 1)")
    fleet_parser.add_argument("--max-attempts", type=int, default=None,
                              metavar="N",
                              help="override the spec's retry policy: total "
                                   "attempts per node (1 = no retry)")
    fleet_parser.add_argument("--retry-backoff-s", type=float, default=None,
                              metavar="S",
                              help="override the retry backoff before the "
                                   "second attempt (doubles per attempt)")
    fleet_parser.add_argument("--node-timeout-s", type=float, default=None,
                              metavar="S",
                              help="per-attempt wall-clock budget per node "
                                   "(pooled runs only; a stuck worker is "
                                   "shed and the pool rebuilt)")

    top_parser = sub.add_parser(
        "top",
        help="render a fleet health table (per-node tail latency, SLO "
             "attainment, probe health, active alerts)")
    top_parser.add_argument(
        "source",
        help="a fleet --telemetry-dir directory or a fleet --json report")

    args = parser.parse_args(argv)

    if args.command == "analyze":
        from repro.obs.analysis import (
            analysis_to_json, analyze_capture, format_analysis,
            write_analysis_json,
        )

        paths = _expand_capture_paths(args.paths)
        if not paths:
            print("no JSONL captures found", file=sys.stderr)
            return 2
        check = not args.no_invariants

        def _critical_path(path, analysis):
            if not args.critical_path:
                return
            from repro.obs.analysis import critical_path_from_streams
            from repro.obs.spans import format_critical_path

            _trees, report = critical_path_from_streams(path)
            analysis["critical_path"] = report
            print(format_critical_path(report))

        if len(paths) == 1:
            analysis = analyze_capture(paths[0], check_invariants=check)
            print(format_analysis(analysis))
            _critical_path(paths[0], analysis)
            if args.json:
                write_analysis_json(args.json, analysis)
                print(f"wrote analysis report to {args.json}")
            return 1 if analysis["violations"] else 0
        analyses = {}
        total_violations = 0
        for path in paths:
            label = os.path.splitext(os.path.basename(path))[0]
            analysis = analyze_capture(path, check_invariants=check)
            analyses[label] = analysis
            total_violations += len(analysis["violations"])
            print(f"==== {label} ({path}) ====")
            print(format_analysis(analysis))
            _critical_path(path, analysis)
            print()
        print(f"combined: {len(paths)} captures, "
              f"{total_violations} invariant violations")
        if args.json:
            payload = {label: analysis_to_json(analysis)
                       for label, analysis in analyses.items()}
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"wrote combined analysis report to {args.json}")
        return 1 if total_violations else 0

    if args.command == "soak":
        from repro.scenario import load_scenario, run_soak
        from repro.sim.units import MILLISECONDS

        scenario = load_scenario(args.scenario)

        def _soak():
            return run_soak(
                scenario, seed=args.seed,
                duration_ns=int(args.duration_ms * args.scale
                                * MILLISECONDS),
                drain_ns=int(args.drain_ms * MILLISECONDS),
                dp_slo_us=args.dp_slo_us, fault_scale=args.scale,
                spans=args.spans)

        violations = []
        if args.check_invariants:
            from repro.obs import observe

            with observe(check_invariants=True) as session:
                summary = _soak()
            violations = session.violations()
        else:
            summary = _soak()
        print(f"scenario: arm={scenario.arm} traffic={scenario.traffic} "
              f"faults={scenario.faults or '-'}"
              + (f" tenants={len(scenario.tenants)}"
                 if scenario.tenants else ""))
        latency = summary["dp_latency_us"]
        print(f"dp probes: {summary['dp_sample_count']} "
              f"(p50 {latency.get('p50', 0.0):.1f} us, "
              f"p99 {latency.get('p99', 0.0):.1f} us, "
              f"p99.9 {latency.get('p99.9', 0.0):.1f} us); "
              f"SLO attainment {summary['dp_slo_attainment_pct']:.2f}% "
              f"at {summary['dp_slo_us']:.0f} us")
        print(f"vm startups: {summary['vms_started']}/"
              f"{summary['vms_requested']} started; "
              f"SLO attainment {summary['startup_slo_attainment_pct']:.2f}% "
              f"at {summary['startup_slo_ms']:.0f} ms")
        for tid, block in sorted((summary.get("tenants") or {}).items()):
            tenant_dp = block["dp_latency_us"]
            print(f"tenant {tid} (weight {block['weight']:g}): "
                  f"dp p99 {tenant_dp.get('p99', 0.0):.1f} us, "
                  f"dp SLO {block['dp_slo_attainment_pct']:.2f}%, "
                  f"startup SLO "
                  f"{block['startup_slo_attainment_pct']:.2f}%, "
                  f"granted {block['granted_ns'] / 1e6:.1f} ms")
        faults = summary["faults"]
        if faults["injected"]:
            print(f"faults: {faults['injected']} injected, "
                  f"{faults['cleared']} cleared")
        if args.spans:
            spans_info = summary["spans"]
            print(f"spans: {spans_info['completed']} requests traced, "
                  f"{spans_info['open']} open at end of run")
            for channel in sorted(summary["exemplars"]):
                records = summary["exemplars"][channel]
                if not records:
                    continue
                worst = records[0]
                print(f"  {channel} worst request: {worst['request']} "
                      f"{worst['duration_ns'] / 1e6:.3f} ms, dominated by "
                      f"{worst['dominant']} ({worst['dominant_pct']:.0f}%)")
        if args.json:
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=2)
                handle.write("\n")
            print(f"wrote soak summary to {args.json}")
        if args.check_invariants:
            problems = []
            if summary.get("tenants"):
                from repro.tenancy import verify_tenant_summary

                problems = verify_tenant_summary(summary)
            if violations or problems:
                print(f"INVARIANT VIOLATIONS: "
                      f"{len(violations) + len(problems)}")
                for label, violation in violations[:20]:
                    print(f"  stream {label!r}:")
                    for row in str(violation).splitlines():
                        print(f"  {row}")
                for problem in problems:
                    print(f"  summary: {problem}")
                return 1
            print("invariants: all checks passed (0 violations)")
        return 0

    if args.command == "fleet":
        from repro.fleet import (
            FleetRunFailed, FleetRunner, format_fleet_text, load_fleet_spec,
            verify_fleet_report, write_fleet_json, write_fleet_md,
        )
        from repro.fleet.durability import retry_with

        spec = load_fleet_spec(args.spec)
        if args.seed is not None:
            spec = spec.with_seed(args.seed)
        if args.nodes is not None:
            spec = spec.subset(args.nodes)
        if args.raw_samples:
            spec.raw_samples = True
        if args.spans:
            spec.spans = True
        if args.telemetry_interval_ms is not None:
            spec.telemetry_interval_ms = args.telemetry_interval_ms
        retry = retry_with(spec.retry, max_attempts=args.max_attempts,
                           backoff_s=args.retry_backoff_s,
                           timeout_s=args.node_timeout_s)
        runner = FleetRunner(spec, jobs=args.jobs, scale=args.scale,
                             capture_dir=args.capture_dir,
                             check_invariants=args.check_invariants,
                             telemetry_dir=args.telemetry_dir,
                             retry=retry,
                             checkpoint_dir=args.checkpoint_dir,
                             resume=args.resume, allow_failures=True)
        report = runner.run()
        failed = (report["aggregate"].get("failed_nodes") or [])
        print(format_fleet_text(report))
        if args.out:
            write_fleet_md(args.out, report)
            print(f"wrote fleet report to {args.out}")
        if args.json:
            write_fleet_json(args.json, report)
            print(f"wrote canonical fleet JSON to {args.json}")
        if args.capture_dir:
            print(f"wrote per-node captures to {args.capture_dir}/")
        if args.telemetry_dir:
            print(f"wrote per-node telemetry, merged.jsonl and "
                  f"fleet.openmetrics to {args.telemetry_dir}/")
        if args.checkpoint_dir:
            print(f"journaled node outcomes to {args.checkpoint_dir}/ "
                  f"(resume with --resume)")
        if args.check_invariants:
            problems = verify_fleet_report(report)
            if problems:
                print("FLEET REPORT INCONSISTENT:")
                for problem in problems:
                    print(f"  {problem}")
                return 1
        if (args.check_invariants
                and not report["aggregate"]["fleet"]["invariants_ok"]):
            return 1
        if failed and not args.allow_failures:
            print(str(FleetRunFailed(failed, report)), file=sys.stderr)
            return 1
        return 0

    if args.command == "top":
        from repro.fleet.telemetry import render_top

        print(render_top(args.source))
        return 0

    if args.command == "trace-request":
        from repro.obs.analysis import find_request_tree
        from repro.obs.spans import format_waterfall

        tree = find_request_tree(args.capture, args.request_id)
        if tree is None:
            print(f"request {args.request_id!r} not found in "
                  f"{args.capture} (was the capture taken with --spans? "
                  f"analyze --critical-path lists exemplar ids)",
                  file=sys.stderr)
            return 2
        print(format_waterfall(tree))
        return 0

    # Import here so `--help` stays fast.
    from repro.experiments import EXPERIMENTS, run_experiment

    if args.command == "validate":
        from repro.experiments.validate import (
            profile_scheduling, run_validation, write_experiments_md,
        )

        exp_ids = args.only.split(",") if args.only else None
        outcomes = run_validation(scale=args.scale, seed=args.seed,
                                  exp_ids=exp_ids, progress=print,
                                  jobs=args.jobs)
        failures = [outcome["id"] for outcome in outcomes
                    if not all(ok for _, ok in outcome["checks"])]
        profile = profile_scheduling(scale=args.scale, seed=args.seed)
        n_violations = len(profile["violations"])
        status = "OK " if n_violations == 0 else "FAIL"
        print(f"[{status}] latency profile ({profile['exp_id']}): "
              f"{n_violations} invariant violations")
        if args.out:
            write_experiments_md(args.out, outcomes, args.scale, args.seed,
                                 profile=profile)
            print(f"wrote {args.out}")
        if n_violations:
            failures.append("latency-profile")
        if failures:
            print(f"shape-check failures: {failures}")
            return 1
        print(f"all {len(outcomes)} experiments pass their shape checks")
        return 0

    if args.command == "list":
        for exp_id in sorted(EXPERIMENTS):
            entry = EXPERIMENTS[exp_id]
            print(f"{exp_id:14s} {entry['paper_ref']:12s} {entry['title']}")
        return 0

    from repro.obs import (
        format_metrics, observe, write_chrome_trace, write_jsonl,
        write_metrics_json,
    )

    from repro.faults import active_fault_plan, load_plan
    from repro.scenario import arm_override, parse_arm_list

    fault_plan = None
    if args.faults:
        fault_plan = load_plan(args.faults).scaled(args.scale)
        print(f"fault injection: plan {fault_plan.name!r} "
              f"({len(fault_plan.faults)} faults, scale {args.scale})")

    arms = parse_arm_list(args.arm) if args.arm else None
    if arms:
        print(f"arm override: {', '.join(arms)}")

    tracing = args.trace is not None or args.jsonl is not None
    targets = sorted(EXPERIMENTS) if args.exp_id == "all" else [args.exp_id]
    reports = []
    with observe(trace=tracing,
                 check_invariants=args.check_invariants,
                 spans=args.spans) as session, \
            active_fault_plan(fault_plan), arm_override(arms):
        for exp_id in targets:
            started = time.time()
            result = run_experiment(exp_id, scale=args.scale, seed=args.seed)
            elapsed = time.time() - started
            text = result.to_text() + f"\n[{elapsed:.1f}s wall]"
            print(text)
            print()
            reports.append(text)
        if args.trace:
            write_chrome_trace(args.trace, session.streams)
            dropped = session.dropped_events()
            note = f" ({dropped} events dropped)" if dropped else ""
            print(f"wrote Chrome trace to {args.trace}{note}")
        if args.jsonl:
            write_jsonl(args.jsonl, session.streams)
            print(f"wrote trace events to {args.jsonl}")
        if args.metrics:
            write_metrics_json(args.metrics, session.metrics)
            print(f"wrote metrics snapshot to {args.metrics}")
            print()
            print(format_metrics(session.metrics.snapshot()))
    if args.out:
        with open(args.out, "a") as handle:
            handle.write("\n\n".join(reports) + "\n")
    if args.check_invariants:
        violations = session.violations()
        if violations:
            print(f"INVARIANT VIOLATIONS: {len(violations)}")
            for label, violation in violations[:20]:
                print(f"  stream {label!r}:")
                for row in str(violation).splitlines():
                    print(f"  {row}")
            if len(violations) > 20:
                print(f"  ... {len(violations) - 20} more")
            return 1
        print("invariants: all checks passed (0 violations)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
