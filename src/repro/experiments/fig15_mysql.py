"""Figure 15: MySQL under 192 sysbench threads, Tai Chi vs baseline.

The paper reports 1.56 % average overhead (peaking at 1.63 % in average
query throughput).
"""

from repro.experiments.common import overhead_pct, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import run_mysql
from repro.workloads.background import start_cp_background

METRICS = ("avg_query_per_s", "max_query_per_s", "avg_trans_per_s",
           "max_trans_per_s")

#: Reference arm first, measured arm second (``run --arm`` overrides).
DEFAULT_ARMS = ("baseline", "taichi")


def _measure(arm, duration, seed):
    deployment = build(arm, seed=seed)
    start_cp_background(deployment, n_monitors=4, rolling_tasks=3)
    deployment.warmup()
    return run_mysql(deployment, duration)


@register("fig15", "MySQL throughput under sysbench", "Figure 15")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    duration = scaled_duration(60 * MILLISECONDS, scale)
    baseline = _measure(arms[0], duration, seed)
    taichi = _measure(arms[-1], duration, seed)
    rows = []
    for metric in METRICS:
        rows.append({
            "metric": metric,
            "baseline": baseline[metric],
            "taichi": taichi[metric],
            "overhead_pct": overhead_pct(taichi[metric], baseline[metric]),
        })
    overheads = [row["overhead_pct"] for row in rows]
    return ExperimentResult(
        exp_id="fig15",
        title="MySQL query/transaction throughput",
        paper_ref="Figure 15",
        rows=rows,
        derived={
            "avg_overhead_pct": sum(overheads) / len(overheads),
            "max_overhead_pct": max(overheads),
        },
        paper={"avg_overhead_pct": 1.56, "max_overhead_pct": 1.63},
    )
