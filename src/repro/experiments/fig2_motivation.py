"""Figure 2: baseline CP degradation with instance density.

VM-creation storms at density x1..x4 against the static-partition
baseline.  The paper reports CP task execution time degrading ~8x and VM
startup exceeding its SLO by ~3.1x at density x4.
"""

from repro.cp.device_mgmt import DeviceManager, DeviceMgmtParams
from repro.cp.orchestration import Orchestrator
from repro.experiments.common import ratio, scaled_count
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import build
from repro.sim.units import MILLISECONDS, SECONDS
from repro.workloads.background import start_cp_background

DENSITIES = (1.0, 2.0, 3.0, 4.0)


def run_density_point(arm, density, storm_size, seed,
                      max_ns=120 * SECONDS, **knobs):
    """One storm at one density; returns (startup stats, CP-exec stats)."""
    deployment = build(arm, seed=seed, **knobs)
    # Standing CP load (monitoring, log shipping) scales with the number of
    # instances and devices on the node — i.e. with density (Section 3.1).
    start_cp_background(
        deployment,
        n_monitors=int(4 * density),
        rolling_tasks=int(2 * density),
    )
    manager = DeviceManager(deployment.board, deployment.cp_affinity,
                            params=DeviceMgmtParams())
    orchestrator = Orchestrator(manager, density=density,
                                base_storm_size=storm_size)
    deployment.warmup()
    requests = orchestrator.launch_storm()
    env = deployment.env
    env.run(until=env.any_of(
        [env.all_of([request.done for request in requests]),
         env.timeout(max_ns)]
    ))
    startups = orchestrator.startup_times_ns()
    cp_execs = orchestrator.cp_execution_times_ns()
    if not startups:
        raise RuntimeError(f"no VM startups completed at density {density}")
    return (
        sum(startups) / len(startups),
        sum(cp_execs) / len(cp_execs),
        manager.params.startup_slo_ns,
    )


@register("fig2", "VM startup and CP execution vs instance density (baseline)",
          "Figure 2")
def run(scale=1.0, seed=0):
    storm_size = scaled_count(16, scale, floor=8)
    rows = []
    base_cp = None
    for density in DENSITIES:
        startup_ns, cp_ns, slo_ns = run_density_point(
            "baseline", density, storm_size, seed
        )
        if base_cp is None:
            base_cp = cp_ns
        rows.append({
            "density": density,
            "avg_cp_exec_ms": cp_ns / MILLISECONDS,
            "cp_exec_vs_x1": ratio(cp_ns, base_cp),
            "avg_startup_ms": startup_ns / MILLISECONDS,
            "startup_vs_slo": ratio(startup_ns, slo_ns),
        })
    return ExperimentResult(
        exp_id="fig2",
        title="Baseline CP degradation with instance density",
        paper_ref="Figure 2",
        rows=rows,
        derived={
            "cp_exec_degradation_at_x4": rows[-1]["cp_exec_vs_x1"],
            "startup_vs_slo_at_x4": rows[-1]["startup_vs_slo"],
        },
        paper={
            "cp_exec_degradation_at_x4": 8.0,
            "startup_vs_slo_at_x4": 3.1,
        },
        notes=(
            "Storm sizes scale with density; the static 4-CPU CP partition "
            "saturates, producing the superlinear degradation the paper "
            "motivates with."
        ),
    )
