"""Ablations of the two adaptive algorithms (Section 4.3's design argument).

The paper argues a fixed empty-poll threshold is a bad design: too small
means false-positive yields (vCPU slices killed immediately by the
hardware probe), too large wastes harvestable idle cycles.  Likewise a
fixed vCPU time slice either burns VM-exits during long idle stretches or
reacts slowly.  These experiments quantify both claims on the live model.

The workload alternates quiet stretches with traffic bursts so both
failure modes are exercised; CP pressure keeps the vCPUs hungry.
"""

from repro.core import TaiChiConfig
from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw.packet import IORequest, PacketKind
from repro.scenario import build
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.virt import VMExitReason
from repro.workloads.background import start_cp_background


def _run_config(config, duration_ns, seed):
    deployment = build("taichi", seed=seed, taichi_config=config)
    start_cp_background(deployment, n_monitors=2, rolling_tasks=6)
    deployment.warmup()
    env = deployment.env
    board = deployment.board

    def traffic():
        rng = deployment.rng.stream("ablation-traffic")
        deadline = env.now + duration_ns
        while env.now < deadline:
            # Burst on every queue, then a quiet stretch.
            for _ in range(int(rng.integers(10, 30))):
                queue = int(rng.integers(0, 8))
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 256, ("net", queue, 0),
                    service_ns=1_800))
                yield env.timeout(int(rng.exponential(20 * MICROSECONDS)))
            yield env.timeout(int(rng.exponential(1 * MILLISECONDS)))

    env.process(traffic(), name="traffic")
    deployment.run(env.now + duration_ns)

    scheduler = deployment.taichi.scheduler
    slices = max(scheduler.slices_run, 1)
    probe_exits = scheduler.exits_by_reason[VMExitReason.HW_PROBE_IRQ]
    harvested_ns = sum(vcpu.busy_ns for vcpu in deployment.taichi.vcpus)
    return {
        "slices": scheduler.slices_run,
        "false_positive_rate": probe_exits / slices,
        "harvested_ms": harvested_ns / MILLISECONDS,
        "switch_overhead_pct": (
            100.0 * scheduler.switch_overhead_ns / max(harvested_ns, 1)
        ),
        "notifications": deployment.taichi.sw_probe.notifications,
    }


@register("ablation_threshold", "Fixed vs adaptive empty-poll threshold",
          "Section 4.3 (design rationale)")
def run(scale=1.0, seed=0):
    duration = scaled_duration(400 * MILLISECONDS, scale)
    configs = [
        ("fixed small (N=8)", TaiChiConfig(
            initial_threshold=8, min_threshold=8, max_threshold=8,
            adaptive_threshold=False)),
        ("fixed large (N=4096)", TaiChiConfig(
            initial_threshold=4096, min_threshold=4096, max_threshold=4096,
            adaptive_threshold=False)),
        ("adaptive (Tai Chi)", TaiChiConfig()),
    ]
    rows = []
    for label, config in configs:
        metrics = _run_config(config, duration, seed)
        rows.append({"threshold_policy": label, **metrics})
    by_label = {row["threshold_policy"]: row for row in rows}
    return ExperimentResult(
        exp_id="ablation_threshold",
        title="Empty-poll threshold policy ablation",
        paper_ref="Section 4.3",
        rows=rows,
        derived={
            "small_false_positive_rate":
                by_label["fixed small (N=8)"]["false_positive_rate"],
            "large_harvested_ms":
                by_label["fixed large (N=4096)"]["harvested_ms"],
            "adaptive_harvested_ms":
                by_label["adaptive (Tai Chi)"]["harvested_ms"],
        },
        paper={
            "claim": (
                "an overly small N increases false positives; an overly "
                "large N wastes CPU resources; adaptation balances both"
            ),
        },
    )


@register("ablation_slice", "Fixed vs adaptive vCPU time slice",
          "Section 4.1 (design rationale)")
def run_slice(scale=1.0, seed=0):
    duration = scaled_duration(400 * MILLISECONDS, scale)
    configs = [
        ("fixed 50us", TaiChiConfig(adaptive_slice=False)),
        ("adaptive 50us-800us", TaiChiConfig()),
    ]
    rows = []
    for label, config in configs:
        metrics = _run_config(config, duration, seed)
        rows.append({"slice_policy": label, **metrics})
    fixed, adaptive = rows
    return ExperimentResult(
        exp_id="ablation_slice",
        title="vCPU time-slice policy ablation",
        paper_ref="Section 4.1",
        rows=rows,
        derived={
            "fixed_switch_overhead_pct": fixed["switch_overhead_pct"],
            "adaptive_switch_overhead_pct": adaptive["switch_overhead_pct"],
        },
        paper={
            "claim": (
                "fixed slices increase unnecessary, costly VM-exits during "
                "sustained idleness; doubling on expiry amortizes them"
            ),
        },
    )
