"""Table 2: type-1 vs type-2 vs Tai Chi architectural properties.

Structural properties (DP residency, OS count, IPC nativeness) read off
the deployment models; DP performance class measured with a short tcp_crr
run on each.
"""

from repro.experiments.common import overhead_pct, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import run_tcp_crr

PROPERTIES = {
    "taichi-vdp": {
        "label": "Type-1 (Xen-like; Tai Chi-vDP stand-in)",
        "dp_residency": "Guest (vCPU context)",
        "cp_residency": "Guest (vCPU context)",
        "os_count": 1,
        "dp_cp_ipc": "Native",
    },
    "type2": {
        "label": "Type-2 (QEMU+KVM)",
        "dp_residency": "SmartNIC OS",
        "cp_residency": "Guest OS",
        "os_count": 2,
        "dp_cp_ipc": "Broken (RPC required)",
    },
    "taichi": {
        "label": "Tai Chi (hybrid)",
        "dp_residency": "SmartNIC OS",
        "cp_residency": "SmartNIC OS (vCPU)",
        "os_count": 1,
        "dp_cp_ipc": "Native",
    },
}

#: Measured arms, in table order; ``run --arm`` narrows/extends the set
#: (arms without a PROPERTIES entry get a generic label).
DEFAULT_ARMS = ("taichi-vdp", "type2", "taichi")


@register("table2", "Virtualization architectures compared", "Table 2")
def run(scale=1.0, seed=0):
    duration = scaled_duration(30 * MILLISECONDS, scale)
    baseline = build("baseline", seed=seed)
    baseline.warmup()
    base_cps = run_tcp_crr(baseline, duration, n_connections=512)["cps"]
    rows = []
    for arm in arms_under_test(DEFAULT_ARMS):
        deployment = build(arm, seed=seed)
        deployment.warmup()
        cps = run_tcp_crr(deployment, duration, n_connections=512)["cps"]
        overhead = overhead_pct(cps, base_cps)
        props = PROPERTIES.get(arm, {
            "label": arm, "dp_residency": "-", "cp_residency": "-",
            "os_count": 1, "dp_cp_ipc": "-",
        })
        rows.append({
            "architecture": props["label"],
            "dp_residency": props["dp_residency"],
            "cp_residency": props["cp_residency"],
            "os_count": props["os_count"],
            "dp_cp_ipc": props["dp_cp_ipc"],
            "dp_overhead_pct": overhead,
        })
    return ExperimentResult(
        exp_id="table2",
        title="Type-1 vs type-2 vs hybrid virtualization",
        paper_ref="Table 2",
        rows=rows,
        paper={
            "type1_dp_perf": "Low (virtualization tax)",
            "type2_dp_perf": "Medium (2us scheduling latency + lost CPU)",
            "taichi_dp_perf": "High",
        },
    )
