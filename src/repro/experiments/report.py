"""Result containers and plain-text table formatting."""

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Rows reproduced for one table/figure, plus paper reference values.

    ``rows`` is a list of dicts sharing the same keys (one per table row /
    figure series point).  ``paper`` holds the published values or ratios
    this run should be compared against; ``derived`` holds the headline
    ratios computed from ``rows`` (e.g. "taichi_speedup_at_32").
    """

    exp_id: str
    title: str
    paper_ref: str
    rows: list = field(default_factory=list)
    paper: dict = field(default_factory=dict)
    derived: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    notes: str = ""

    def to_text(self):
        lines = [f"== {self.exp_id}: {self.title} ({self.paper_ref}) =="]
        if self.rows:
            lines.append(format_table(self.rows))
        lines.extend(format_section("derived", self.derived))
        lines.extend(format_section("paper reference", self.paper))
        lines.extend(format_section("metrics", self.metrics))
        if self.notes:
            lines.append(f"-- notes --\n  {self.notes}")
        return "\n".join(lines)

    def __str__(self):
        return self.to_text()


def format_section(title, mapping):
    """Render one ``-- title --`` block of key/value lines (empty → [])."""
    if not mapping:
        return []
    lines = [f"-- {title} --"]
    lines.extend(f"  {key}: {_fmt(value)}" for key, value in mapping.items())
    return lines


def format_table(rows):
    """Render a list of same-keyed dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    rule = "-+-".join("-" * width for width in widths)
    body = [
        " | ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, rule] + body)


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
