"""Figure 14: normalized DP performance, Tai Chi vs baseline.

The netperf/sockperf suite (udp_stream, tcp_stream, tcp_rr, sockperf tcp
and udp) with the standing CP background active.  The paper reports 0.6 %
average overhead with a 1.92 % peak.
"""

from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import (
    run_sockperf_tcp,
    run_sockperf_udp,
    run_tcp_rr,
    run_tcp_stream,
    run_udp_stream,
)
from repro.workloads.background import start_cp_background

CASES = (
    ("udp_stream:avg_rx_bw", run_udp_stream, "avg_rx_bw_gbps", 1.0),
    ("tcp_stream:avg_tx_pps", run_tcp_stream, "avg_tx_pps", 1.0),
    ("tcp_rr:rr_per_s", run_tcp_rr, "rr_per_s", 1.0),
    ("sockperf_tcp:cps", run_sockperf_tcp, "cps", 1.0),
    ("sockperf_udp:avg_lat", run_sockperf_udp, "udp_avg_lat_ns", -1.0),
)

#: Reference arm first, measured arm second (``run --arm`` overrides).
DEFAULT_ARMS = ("baseline", "taichi")


def _measure(arm, case_fn, metric, duration, seed):
    deployment = build(arm, seed=seed)
    start_cp_background(deployment, n_monitors=4, rolling_tasks=3)
    deployment.warmup()
    return case_fn(deployment, duration)[metric]


@register("fig14", "Normalized DP performance (netperf + sockperf)",
          "Figure 14")
def run(scale=1.0, seed=0):
    arms = arms_under_test(DEFAULT_ARMS)
    reference, measured = arms[0], arms[-1]
    duration = scaled_duration(50 * MILLISECONDS, scale)
    rows = []
    for label, case_fn, metric, direction in CASES:
        baseline = _measure(reference, case_fn, metric, duration, seed)
        taichi = _measure(measured, case_fn, metric, duration, seed)
        normalized = taichi / baseline if baseline else 0.0
        overhead = (1.0 - normalized) * direction * 100.0
        rows.append({
            "case": label,
            "baseline": baseline,
            "taichi": taichi,
            "normalized": normalized,
            "overhead_pct": overhead,
        })
    overheads = [row["overhead_pct"] for row in rows]
    return ExperimentResult(
        exp_id="fig14",
        title="DP performance normalized to the baseline",
        paper_ref="Figure 14",
        rows=rows,
        derived={
            "avg_overhead_pct": sum(overheads) / len(overheads),
            "max_overhead_pct": max(overheads),
        },
        paper={"avg_overhead_pct": 0.6, "max_overhead_pct": 1.92},
    )
