"""Multi-tenant isolation: noisy neighbors vs. a victim tenant (extension).

The paper schedules one implicit tenant per board; hyperscale SmartNICs
are shared.  This experiment pools one board among four tenants — a
weight-4 victim with a declared 300 us DP SLO and a moderate mix, plus
three weight-1 noisy neighbors running spiky incast traffic, a heavy CP
hum and dense storage-heavy VM-creation storms — and scores the victim
under three regimes over identical seeds and load:

* **Tai Chi, isolation on** — tenant-owned DP CPUs donate only to their
  own tenant's vCPUs and the shared CP pCPUs back tenants by weighted
  fair share; the isolation invariants (fair-share picks, grant-ledger
  conservation) are checked inline during this cell;
* **Tai Chi, isolation off** — the pre-tenancy tenancy-blind round-robin
  with accounting only: the measurable counterfactual;
* **static partition** — no harvesting at all, every tenant's CP work
  queues on the shared CP pCPUs.

The storm includes a hardware-probe outage spanning the measured
window.  With the probe dark, a donated slice runs to its full adaptive
expiry — and a backlogged neighbor's slices double up to 800 us — so
every vCPU squatting a victim DP CPU strands the victim's packets for
the whole slice.  Isolation-on keeps neighbors off the victim's CPUs
(only the victim's own short-sliced, frequently-halting vCPUs ever back
there), which is exactly the "rx-wait interference bound under faults"
invariant the tenancy layer promises.

The claim: isolation-on holds the victim's DP rx-wait p99 inside its
declared SLO and keeps startup attainment high while isolation-off
demonstrably breaches the p99 bound, and Tai Chi beats the static
partition on victim startup attainment either way.
"""

from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import Scenario
from repro.scenario.soak import run_soak
from repro.sim.units import MILLISECONDS

_BASE_DURATION_NS = 500 * MILLISECONDS
_DRAIN_NS = 250 * MILLISECONDS
_VICTIM_SLO_US = 300.0

#: The probe goes dark just after warmup and stays dark through the whole
#: measured window (timestamps scale with ``fault_scale``).
_FAULTS = {
    "name": "tenant-probe-outage",
    "faults": [
        {"kind": "probe_outage", "at_ns": 10 * MILLISECONDS,
         "duration_ns": int(1.5 * _BASE_DURATION_NS)},
    ],
}


def _tenants():
    victim = {
        "tenant_id": "victim",
        "weight": 4.0,
        "dp_slo_us": _VICTIM_SLO_US,
        # No rolling (CPU-bound) tasks: the victim's own vCPU slices stay
        # short, so its self-interference under a dark probe stays far
        # below the SLO — the breach below is the neighbors' doing.
        "workload": {
            "dp_utilization": 0.25,
            "n_monitors": 1,
            "rolling_tasks": 0,
            "vm_period_ms": 100.0,
            "vm_batch_min": 1,
            "vm_batch_max": 2,
            "vm_vblks": 1,
        },
    }
    noisy = [
        {
            "tenant_id": f"noisy{index}",
            "weight": 1.0,
            "traffic": "spiky",
            "workload": {
                "dp_utilization": 0.60,
                "n_monitors": 6,
                "rolling_tasks": 6,
                "vm_period_ms": 40.0,
                "vm_batch_min": 6,
                "vm_batch_max": 10,
                "vm_vblks": 6,
            },
        }
        for index in range(3)
    ]
    return [victim] + noisy


def _cell(arm, isolation, duration_ns, seed, check_invariants=False):
    # Tai Chi cells run with the graceful-degradation layer installed (the
    # production posture): the probe monitor demotes to capped slices while
    # the probe is dark, bounding *self*-interference; the cross-tenant
    # stranding that remains is what the isolation flag governs.
    scenario = Scenario(arm=arm, traffic="bursty", faults=_FAULTS,
                        degradation=(arm == "taichi"), tenants=_tenants(),
                        tenant_isolation=isolation)
    fault_scale = duration_ns / _BASE_DURATION_NS
    violations = None
    if check_invariants:
        from repro.obs import observe

        with observe(check_invariants=True) as session:
            summary = run_soak(scenario, seed=seed, duration_ns=duration_ns,
                               drain_ns=_DRAIN_NS, fault_scale=fault_scale,
                               dp_slo_us=_VICTIM_SLO_US)
        violations = len(session.violations())
    else:
        summary = run_soak(scenario, seed=seed, duration_ns=duration_ns,
                           drain_ns=_DRAIN_NS, fault_scale=fault_scale,
                           dp_slo_us=_VICTIM_SLO_US)
    victim = summary["tenants"]["victim"]
    noisy_started = sum(
        block["vms_started"] for tid, block in summary["tenants"].items()
        if tid != "victim")
    return {
        "victim_dp_p99_us": victim["dp_latency_us"].get("p99", 0.0),
        "victim_dp_slo_pct": victim["dp_slo_attainment_pct"],
        "victim_startup_slo_pct": victim["startup_slo_attainment_pct"],
        "victim_vms_started": victim["vms_started"],
        "noisy_vms_started": noisy_started,
        "victim_granted_ms": victim["granted_ns"] / 1e6,
        "invariant_violations": violations,
    }


@register("ext_multitenant",
          "Multi-tenant isolation: noisy neighbors vs. victim", "extension")
def run(scale=1.0, seed=0):
    duration = scaled_duration(_BASE_DURATION_NS, scale,
                               floor_ns=200 * MILLISECONDS)
    isolated = _cell("taichi", True, duration, seed, check_invariants=True)
    shared = _cell("taichi", False, duration, seed)
    static = _cell("static", True, duration, seed)
    rows = [
        {"system": "Tai Chi, isolation on", **isolated},
        {"system": "Tai Chi, isolation off", **shared},
        {"system": "static partition", **static},
    ]
    return ExperimentResult(
        exp_id="ext_multitenant",
        title="Multi-tenant isolation: 3 noisy neighbors vs. victim tenant",
        paper_ref="extension",
        rows=rows,
        derived={
            "victim_dp_p99_on_us": isolated["victim_dp_p99_us"],
            "victim_dp_p99_off_us": shared["victim_dp_p99_us"],
            "interference_ratio":
                shared["victim_dp_p99_us"]
                / max(isolated["victim_dp_p99_us"], 1e-9),
            "victim_dp_slo_on_pct": isolated["victim_dp_slo_pct"],
            "victim_dp_slo_off_pct": shared["victim_dp_slo_pct"],
            "victim_startup_on_pct": isolated["victim_startup_slo_pct"],
            "victim_startup_off_pct": shared["victim_startup_slo_pct"],
            "victim_startup_static_pct": static["victim_startup_slo_pct"],
            "noisy_vms_on": isolated["noisy_vms_started"],
            "noisy_vms_static": static["noisy_vms_started"],
            "isolation_invariant_violations":
                isolated["invariant_violations"],
        },
        paper={
            "claim": (
                "extension: weighted-share isolation must hold the victim "
                "tenant's DP p99 inside its declared SLO under a "
                "3-neighbor VM storm that demonstrably breaches it with "
                "isolation off"
            ),
        },
    )
