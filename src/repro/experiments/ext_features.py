"""Extension experiments for the Section 8 and Section 9 features.

* ``ext_preemptible_kernel`` — the always-preemptible kernel context: a
  realtime task's wakeup latency next to a kernel-section-heavy hog,
  direct co-scheduling vs the hog wrapped in a vCPU context.
* ``ext_audit`` — on-demand instruction auditing: records captured inside
  the audit domain and the zero-persistent-overhead claim (target
  throughput before/after the session ends).
* ``ext_probe_fusion`` — Section 9's multi-dimensional idle assessment:
  false-positive yield rate with and without pipeline-metadata fusion.
* ``ext_cache_isolation`` — Section 9's cache/TLB isolation: residual DP
  overhead with pollution vs isolation.
"""

from repro.core import InstructionAuditor, PreemptibleKernelContext, TaiChiConfig
from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw.packet import IORequest, PacketKind
from repro.kernel import Compute, Kernel, KernelSection, SchedClass, Sleep, Syscall
from repro.scenario import build
from repro.sim import Environment, MICROSECONDS, MILLISECONDS, SECONDS
from repro.virt import VMExitReason
from repro.workloads import run_sockperf_udp
from repro.workloads.background import start_cp_background


def _kernel_hog(cycles, section_ns):
    for _ in range(cycles):
        yield KernelSection(section_ns)
        yield Compute(100 * MICROSECONDS)


def _rt_latency_probe(env, kernel, affinity, samples, count):
    def body():
        for _ in range(count):
            target = env.now + 2 * MILLISECONDS
            yield Sleep(2 * MILLISECONDS)
            samples.append(env.now - target)
            yield Compute(10 * MICROSECONDS)

    return kernel.spawn("rt-probe", body(),
                        sched_class=SchedClass.REALTIME, affinity=affinity)


@register("ext_preemptible_kernel",
          "Always-preemptible kernel-space context",
          "Section 8, 'An always-preemptible kernel-space context'")
def run_preemptible(scale=1.0, seed=0):
    count = max(int(100 * scale), 20)
    section_ns = 5 * MILLISECONDS

    # Direct co-scheduling on one bare CPU.
    env = Environment()
    kernel = Kernel(env)
    kernel.add_cpu(0)
    kernel.spawn("hog", _kernel_hog(10_000, section_ns))
    direct = []
    _rt_latency_probe(env, kernel, {0}, direct, count)
    env.run(until=(count + 5) * 3 * MILLISECONDS)

    # The hog wrapped in a vCPU context on a Tai Chi board.
    deployment = build("taichi", seed=seed)
    deployment.warmup()
    context = PreemptibleKernelContext(deployment.taichi)
    context.submit("hog", _kernel_hog(10_000, section_ns))
    wrapped = []
    _rt_latency_probe(deployment.env, deployment.kernel,
                      {deployment.board.cp_cpu_ids[0]}, wrapped, count)
    deployment.run(deployment.env.now + (count + 5) * 3 * MILLISECONDS)

    rows = [
        {"setup": "hog direct on the RT task's CPU",
         "rt_wake_max_us": max(direct) / MICROSECONDS,
         "rt_wake_avg_us": sum(direct) / len(direct) / MICROSECONDS},
        {"setup": "hog in a vCPU context (Tai Chi)",
         "rt_wake_max_us": max(wrapped) / MICROSECONDS,
         "rt_wake_avg_us": sum(wrapped) / len(wrapped) / MICROSECONDS},
    ]
    return ExperimentResult(
        exp_id="ext_preemptible_kernel",
        title="Priority inversion through non-preemptible routines, solved",
        paper_ref="Section 8",
        rows=rows,
        derived={
            "max_latency_improvement":
                rows[0]["rt_wake_max_us"] / max(rows[1]["rt_wake_max_us"], 1e-9),
        },
        paper={"claim": "deterministic responsiveness for high-priority "
                        "tasks despite kernel-space low-priority work"},
    )


@register("ext_audit", "On-demand instruction-level auditing", "Section 8")
def run_audit(scale=1.0, seed=0):
    cycles = max(int(60 * scale), 10)
    deployment = build("taichi", seed=seed)
    deployment.warmup()
    env = deployment.env
    auditor = InstructionAuditor(deployment.taichi,
                                 interceptor=lambda thread, instr: True)

    def target_body():
        for _ in range(cycles * 2):
            yield Compute(300 * MICROSECONDS)
            yield Syscall(150 * MICROSECONDS, name="cfg")
            yield Sleep(100 * MICROSECONDS)

    thread = deployment.kernel.spawn(
        "target", target_body(), affinity=set(deployment.board.cp_cpu_ids))

    # Phase 1: audited for the first half of the run.
    session = auditor.begin(thread)
    half = cycles * 600 * MICROSECONDS
    deployment.run(env.now + half)
    audited_progress = thread.total_runtime_ns
    auditor.end(thread)
    # Phase 2: unaudited; same wall time.
    deployment.run(env.now + half)
    unaudited_progress = thread.total_runtime_ns - audited_progress

    summary = session.summary()
    rows = [
        {"metric": "instructions recorded", "value": summary["instructions"]},
        {"metric": "privileged instructions", "value": summary["privileged"]},
        {"metric": "intercepted", "value": summary["intercepted"]},
        {"metric": "progress while audited (ms)",
         "value": audited_progress / MILLISECONDS},
        {"metric": "progress after audit (ms)",
         "value": unaudited_progress / MILLISECONDS},
    ]
    return ExperimentResult(
        exp_id="ext_audit",
        title="Auditing captures privileged instructions, then vanishes",
        paper_ref="Section 8",
        rows=rows,
        derived={
            "privileged_fraction":
                summary["privileged"] / max(summary["instructions"], 1),
            "records": summary["instructions"],
        },
        paper={"claim": "granular telemetry without persistent runtime "
                        "overhead"},
    )


def _premature_exit_rate(config, duration_ns, seed):
    deployment = build("taichi", seed=seed, taichi_config=config)
    start_cp_background(deployment, n_monitors=2, rolling_tasks=6)
    deployment.warmup()
    env = deployment.env
    board = deployment.board

    def traffic():
        # Pairs of packets a few microseconds apart: the second packet is
        # regularly still inside the accelerator pipeline when the DP loop
        # crosses its (deliberately eager) empty-poll threshold.
        rng = deployment.rng.stream("fusion-traffic")
        deadline = env.now + duration_ns
        while env.now < deadline:
            queue = int(rng.integers(0, 8))
            for _ in range(2):
                board.accelerator.submit(IORequest(
                    PacketKind.NET_TX, 256, ("net", queue, 0),
                    service_ns=1_800))
                yield env.timeout(int(rng.exponential(4 * MICROSECONDS)))
            yield env.timeout(int(rng.exponential(60 * MICROSECONDS)))

    env.process(traffic(), name="traffic")
    deployment.run(env.now + duration_ns)
    scheduler = deployment.taichi.scheduler
    probe_exits = scheduler.exits_by_reason[VMExitReason.HW_PROBE_IRQ]
    return {
        "slices": scheduler.slices_run,
        "hw_probe_exits": probe_exits,
        "premature_exits": scheduler.premature_exits,
        "premature_rate":
            scheduler.premature_exits / max(scheduler.slices_run, 1),
        "harvested_ms": sum(v.busy_ns for v in deployment.taichi.vcpus)
        / MILLISECONDS,
    }


@register("ext_probe_fusion", "Multi-dimensional idle assessment",
          "Section 9, 'Further optimizations'")
def run_fusion(scale=1.0, seed=0):
    duration = scaled_duration(400 * MILLISECONDS, scale)
    # An eager fixed threshold isolates the fusion effect: every in-flight
    # packet missed by the empty-poll counter becomes a premature slice.
    base = dict(initial_threshold=8, min_threshold=8, max_threshold=8,
                adaptive_threshold=False)
    plain = _premature_exit_rate(TaiChiConfig(**base), duration, seed)
    fused = _premature_exit_rate(
        TaiChiConfig(probe_fusion=True, **base), duration, seed)
    rows = [
        {"probe": "empty-poll counter only", **plain},
        {"probe": "+ pipeline metadata (fusion)", **fused},
    ]
    return ExperimentResult(
        exp_id="ext_probe_fusion",
        title="Fusing accelerator metadata into the yield decision",
        paper_ref="Section 9",
        rows=rows,
        derived={
            "premature_rate_plain": plain["premature_rate"],
            "premature_rate_fused": fused["premature_rate"],
            "premature_exits_avoided":
                plain["premature_exits"] - fused["premature_exits"],
        },
        paper={"claim": "pipeline metadata enables more precise CPU "
                        "relinquishment"},
    )


@register("ext_cache_isolation", "Cache/TLB isolation for vCPU slices",
          "Section 9, 'Further optimizations'")
def run_isolation(scale=1.0, seed=0):
    duration = scaled_duration(150 * MILLISECONDS, scale)

    def measure(config):
        deployment = build("taichi", seed=seed, taichi_config=config)
        start_cp_background(deployment, n_monitors=4, rolling_tasks=6)
        deployment.warmup()
        # Sparse traffic: nearly every packet lands right after a vCPU
        # slice ran on its CPU, i.e. on a cold cache.
        run_sockperf_udp(deployment, duration, rate_pps=6_000)
        packets = sum(s.packets_processed for s in deployment.services)
        processing = sum(s.processing_ns for s in deployment.services)
        return processing / max(packets, 1)

    shared = measure(TaiChiConfig())
    isolated = measure(TaiChiConfig(cache_isolation=True))
    rows = [
        {"configuration": "shared cache (pollution modeled)",
         "per_packet_cost_ns": shared},
        {"configuration": "isolated cache (CAT-style)",
         "per_packet_cost_ns": isolated},
    ]
    return ExperimentResult(
        exp_id="ext_cache_isolation",
        title="Removing cache/TLB pollution from donated slices",
        paper_ref="Section 9",
        rows=rows,
        derived={
            "pollution_overhead_pct": (shared / max(isolated, 1e-9) - 1) * 100,
        },
        paper={"claim": "isolation eliminates the residual DP degradation "
                        "caused by scheduling CP tasks on DP CPUs"},
    )
