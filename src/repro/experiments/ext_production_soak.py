"""A production-style soak (Section 6.6, "Tai Chi in Production").

The paper reports three years of deployment with *no I/O SLO violations*
while VM-startup SLOs recovered.  This experiment runs a compressed "day
in the life" of one node: bursty data-plane load, tenant latency probes,
periodic VM-creation storms through the host/eNIC lifecycle, and the
standing monitoring fleet — and scores both SLOs simultaneously:

* DP SLO: tenant probe p99.9 latency must not regress vs the static
  baseline under identical load ("no I/O SLO violations were reported");
* CP SLO: fraction of VM startups within the startup SLO, plus the
  average startup speedup.
"""

from repro.baselines import StaticPartitionDeployment, TaiChiDeployment
from repro.experiments.common import scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.hw.host import HostNode, VMSpec
from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder
from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS
from repro.workloads.background import start_cp_background, start_dp_background


def _soak(deployment_cls, duration_ns, seed):
    deployment = deployment_cls(seed=seed)
    start_dp_background(deployment, utilization=0.25)
    start_cp_background(deployment, n_monitors=6, rolling_tasks=3)
    deployment.warmup()
    env = deployment.env
    board = deployment.board
    host = HostNode(deployment)

    probe_latency = LatencyRecorder(name="tenant-probe")

    def latency_probe():
        rng = deployment.rng.stream("soak-probe")
        while True:
            queue = int(rng.integers(0, 8))
            done = env.event()
            done.callbacks.append(
                lambda event: probe_latency.record(
                    event.value.total_latency_ns))
            board.accelerator.submit(IORequest(
                PacketKind.NET_TX, 64, ("net", queue, 0),
                service_ns=1_500, done=done))
            yield env.timeout(int(rng.exponential(400 * MICROSECONDS)))

    env.process(latency_probe(), name="latency-probe")

    def storm_source():
        rng = deployment.rng.stream("soak-storms")
        while True:
            yield env.timeout(int(rng.exponential(150 * MILLISECONDS)))
            for _ in range(int(rng.integers(4, 10))):
                host.create_vm(VMSpec())

    env.process(storm_source(), name="storm-source")
    deployment.run(env.now + duration_ns)
    # Drain: give in-flight startups a grace window.
    deployment.run(env.now + 500 * MILLISECONDS)

    startups = [vm.startup_time_ns() for vm in host.vms
                if vm.startup_time_ns() is not None]
    slo_ns = host.manager.params.startup_slo_ns
    within = sum(1 for value in startups if value <= slo_ns)
    return {
        "dp_p99_us": probe_latency.p99() / MICROSECONDS,
        "dp_p999_us": probe_latency.p999() / MICROSECONDS,
        "vms_started": len(startups),
        "startup_slo_compliance_pct":
            100.0 * within / max(len(startups), 1),
        "avg_startup_ms": (sum(startups) / max(len(startups), 1))
        / MILLISECONDS,
    }


@register("ext_production_soak", "Both SLOs under a production mix",
          "Section 6.6")
def run(scale=1.0, seed=0):
    duration = scaled_duration(2 * SECONDS, scale,
                               floor_ns=400 * MILLISECONDS)
    static = _soak(StaticPartitionDeployment, duration, seed)
    taichi = _soak(TaiChiDeployment, duration, seed)
    rows = [
        {"system": "static partition", **static},
        {"system": "Tai Chi", **taichi},
    ]
    return ExperimentResult(
        exp_id="ext_production_soak",
        title="Compressed production soak: DP and CP SLOs together",
        paper_ref="Section 6.6",
        rows=rows,
        derived={
            # "No I/O SLO violations were reported during Tai Chi upgrade":
            # the operative check is that Tai Chi adds no tail latency over
            # whatever the static baseline delivers under the same load.
            "dp_p999_vs_baseline":
                taichi["dp_p999_us"] / max(static["dp_p999_us"], 1e-9),
            "taichi_startup_compliance_pct":
                taichi["startup_slo_compliance_pct"],
            "static_startup_compliance_pct":
                static["startup_slo_compliance_pct"],
            "startup_speedup":
                static["avg_startup_ms"] / max(taichi["avg_startup_ms"], 1e-9),
        },
        paper={
            "claim": (
                "no I/O SLO violations during three years of deployment "
                "while VM startups recovered 3.1x in high density"
            ),
        },
    )
