"""A production-style soak (Section 6.6, "Tai Chi in Production").

The paper reports three years of deployment with *no I/O SLO violations*
while VM-startup SLOs recovered.  This experiment runs a compressed "day
in the life" of one node: bursty data-plane load, tenant latency probes,
periodic VM-creation storms through the host/eNIC lifecycle, and the
standing monitoring fleet — and scores both SLOs simultaneously:

* DP SLO: tenant probe p99.9 latency must not regress vs the static
  baseline under identical load ("no I/O SLO violations were reported");
* CP SLO: fraction of VM startups within the startup SLO, plus the
  average startup speedup.

The simulation itself is :func:`repro.scenario.soak.run_soak` — the same
driver the fleet runner uses per node — so this experiment is one
:class:`~repro.scenario.Scenario` per arm plus scoring.
"""

from repro.experiments.common import ratio, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import Scenario, WorkloadMix, arms_under_test, run_soak
from repro.sim.units import MILLISECONDS, SECONDS

#: Reference arm first, measured arm last (``run --arm`` overrides).
DEFAULT_ARMS = ("baseline", "taichi")

_LABELS = {"baseline": "static partition", "static": "static partition",
           "taichi": "Tai Chi"}

#: The compressed production mix: moderate DP load with the monitoring
#: fleet humming, and VM-creation storms every ~150 ms.
PRODUCTION_MIX = WorkloadMix(dp_utilization=0.25, n_monitors=6,
                             rolling_tasks=3, probe_period_us=400.0,
                             vm_period_ms=150.0, vm_batch_min=4,
                             vm_batch_max=9, vm_vblks=4)


def _soak(arm, duration_ns, seed):
    scenario = Scenario(arm=arm, traffic="bursty", workload=PRODUCTION_MIX)
    summary = run_soak(scenario, seed=seed, duration_ns=duration_ns,
                       drain_ns=500 * MILLISECONDS, label="prod-soak")
    latency = summary["dp_latency_us"]
    startup = summary["startup_ms"]
    return {
        "dp_p99_us": latency.get("p99", 0.0),
        "dp_p999_us": latency.get("p99.9", 0.0),
        "vms_started": summary["vms_started"],
        "startup_slo_compliance_pct": summary["startup_slo_attainment_pct"],
        "avg_startup_ms": startup.get("mean", 0.0),
    }


@register("ext_production_soak", "Both SLOs under a production mix",
          "Section 6.6")
def run(scale=1.0, seed=0):
    duration = scaled_duration(2 * SECONDS, scale,
                               floor_ns=400 * MILLISECONDS)
    arms = arms_under_test(DEFAULT_ARMS)
    static = _soak(arms[0], duration, seed)
    taichi = _soak(arms[-1], duration, seed)
    rows = [
        {"system": _LABELS.get(arms[0], arms[0]), **static},
        {"system": _LABELS.get(arms[-1], arms[-1]), **taichi},
    ]
    return ExperimentResult(
        exp_id="ext_production_soak",
        title="Compressed production soak: DP and CP SLOs together",
        paper_ref="Section 6.6",
        rows=rows,
        derived={
            # "No I/O SLO violations were reported during Tai Chi upgrade":
            # the operative check is that Tai Chi adds no tail latency over
            # whatever the static baseline delivers under the same load.
            "dp_p999_vs_baseline":
                ratio(taichi["dp_p999_us"], static["dp_p999_us"]),
            "taichi_startup_compliance_pct":
                taichi["startup_slo_compliance_pct"],
            "static_startup_compliance_pct":
                static["startup_slo_compliance_pct"],
            "startup_speedup":
                ratio(static["avg_startup_ms"], taichi["avg_startup_ms"]),
        },
        paper={
            "claim": (
                "no I/O SLO violations during three years of deployment "
                "while VM startups recovered 3.1x in high density"
            ),
        },
    )
