"""Figure 12: netperf tcp_crr across the four virtualization designs.

Compares connections/s and rx/tx pps for: static baseline, Tai Chi,
Tai Chi-vDP (type-1 stand-in: DP in vCPU contexts), and QEMU+KVM type-2.
The paper reports ~8 % degradation for vDP, ~26 % for type-2, and ~0.2 %
for Tai Chi.
"""

from repro.experiments.common import overhead_pct, scaled_duration
from repro.experiments.registry import register
from repro.experiments.report import ExperimentResult
from repro.scenario import arms_under_test, build
from repro.sim.units import MILLISECONDS
from repro.workloads import run_tcp_crr
from repro.workloads.background import start_cp_background

#: Reference arm first; ``run --arm`` swaps in any registry arms.
DEFAULT_ARMS = ("baseline", "taichi", "taichi-vdp", "type2")


@register("fig12", "netperf tcp_crr under four virtualization designs",
          "Figure 12")
def run(scale=1.0, seed=0):
    duration = scaled_duration(60 * MILLISECONDS, scale)
    rows = []
    baseline_cps = None
    for arm in arms_under_test(DEFAULT_ARMS):
        deployment = build(arm, seed=seed)
        start_cp_background(deployment, n_monitors=4, rolling_tasks=2)
        deployment.warmup()
        result = run_tcp_crr(deployment, duration, n_connections=512)
        if baseline_cps is None:
            baseline_cps = result["cps"]
        rows.append({
            "system": arm,
            "cps": result["cps"],
            "avg_rx_pps": result["avg_rx_pps"],
            "avg_tx_pps": result["avg_tx_pps"],
            "overhead_pct": overhead_pct(result["cps"], baseline_cps),
        })
    overheads = {row["system"]: row["overhead_pct"] for row in rows}
    return ExperimentResult(
        exp_id="fig12",
        title="Network performance (tcp_crr) across virtualization designs",
        paper_ref="Figure 12",
        rows=rows,
        derived=overheads,
        paper={
            "taichi_overhead_pct": 0.2,
            "taichi-vdp_overhead_pct": 8.0,
            "type2_overhead_pct": 26.0,
        },
    )
