"""Declarative fault plans.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — *what* goes
wrong, *when*, and with which parameters — decoupled from the
:class:`~repro.faults.injector.FaultInjector` that knows *how* to perturb a
live deployment.  Plans are plain data: they round-trip through JSON
(``taichi-experiments run --faults <spec.json>``) and ship with named
presets (``--faults storm``).

All times are simulation nanoseconds measured from environment start.
:meth:`FaultPlan.scaled` shrinks/stretches every timestamp, duration and
period by one factor so the same storm fits a CI-scale run.
"""

import json
from dataclasses import dataclass, field

from repro.sim.units import MICROSECONDS, MILLISECONDS, SECONDS

#: Recognized fault kinds and the parameters each understands.
FAULT_KINDS = {
    "ipi_drop": ("prob",),
    "ipi_delay": ("prob", "delay_ns"),
    "probe_outage": (),
    "probe_flaky": ("spurious_period_ns", "suppress_prob"),
    "accel_stall": (),
    "vcpu_cost_spike": ("factor",),
    "cpu_offline": ("cpu",),
    "dp_stall": ("stall_ns", "service"),
}

#: Kinds whose effect is a one-shot injection rather than a window.
INSTANT_KINDS = frozenset({"dp_stall"})


@dataclass
class FaultSpec:
    """One fault: ``kind`` active from ``at_ns`` for ``duration_ns``.

    ``repeat``/``period_ns`` turn a single window into a storm of
    identical windows.  ``params`` carries kind-specific knobs (see
    :data:`FAULT_KINDS`).
    """

    kind: str
    at_ns: int
    duration_ns: int = 0
    repeat: int = 1
    period_ns: int = 0
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}")
        self.at_ns = int(self.at_ns)
        self.duration_ns = int(self.duration_ns)
        self.repeat = int(self.repeat)
        self.period_ns = int(self.period_ns)
        if self.at_ns < 0:
            raise ValueError("at_ns must be >= 0")
        if self.duration_ns < 0:
            raise ValueError("duration_ns must be >= 0")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if self.repeat > 1 and self.period_ns <= 0:
            raise ValueError("repeat > 1 requires a positive period_ns")
        allowed = set(FAULT_KINDS[self.kind])
        unknown = set(self.params) - allowed
        if unknown:
            raise ValueError(
                f"fault {self.kind!r} does not take parameters "
                f"{sorted(unknown)}; allowed: {sorted(allowed)}")
        if self.kind not in INSTANT_KINDS and self.duration_ns == 0:
            raise ValueError(f"fault {self.kind!r} needs a duration_ns")

    def occurrences(self):
        """Start times of every window this spec expands to."""
        return [self.at_ns + i * self.period_ns for i in range(self.repeat)]

    def to_dict(self):
        data = {"kind": self.kind, "at_ns": self.at_ns}
        if self.duration_ns:
            data["duration_ns"] = self.duration_ns
        if self.repeat != 1:
            data["repeat"] = self.repeat
            data["period_ns"] = self.period_ns
        if self.params:
            data["params"] = dict(self.params)
        return data


@dataclass
class FaultPlan:
    """An ordered set of fault specs plus a name for reports."""

    faults: list
    name: str = "custom"

    def __post_init__(self):
        self.faults = [
            spec if isinstance(spec, FaultSpec) else FaultSpec(**spec)
            for spec in self.faults
        ]

    def scaled(self, factor, min_at_ns=3 * MILLISECONDS,
               min_duration_ns=1 * MILLISECONDS):
        """A copy with every time knob multiplied by ``factor``.

        Floors keep a heavily shrunk plan meaningful: windows never start
        inside the deployment warmup and never collapse to zero length.
        Magnitude parameters (probabilities, cost factors, per-IPI delay)
        are left untouched — only *when*, not *how hard*.
        """
        factor = float(factor)
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        scaled = []
        for spec in self.faults:
            params = dict(spec.params)
            if "stall_ns" in params:
                params["stall_ns"] = max(
                    int(params["stall_ns"] * factor), 100 * MICROSECONDS)
            scaled.append(FaultSpec(
                kind=spec.kind,
                at_ns=max(int(spec.at_ns * factor), min_at_ns),
                duration_ns=(max(int(spec.duration_ns * factor),
                                 min_duration_ns)
                             if spec.duration_ns else 0),
                repeat=spec.repeat,
                period_ns=(max(int(spec.period_ns * factor),
                               min_duration_ns)
                           if spec.period_ns else 0),
                params=params,
            ))
        return FaultPlan(faults=scaled, name=self.name)

    def to_dict(self):
        return {"name": self.name,
                "faults": [spec.to_dict() for spec in self.faults]}

    def to_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    @classmethod
    def from_dict(cls, data):
        return cls(faults=list(data.get("faults", ())),
                   name=data.get("name", "custom"))

    @classmethod
    def from_json(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    @classmethod
    def preset(cls, name):
        try:
            factory = PRESETS[name]
        except KeyError:
            raise ValueError(
                f"unknown fault preset {name!r}; "
                f"choose from {sorted(PRESETS)}") from None
        return factory()

    def __len__(self):
        return len(self.faults)

    def __repr__(self):
        return f"<FaultPlan {self.name!r} faults={len(self.faults)}>"


def _storm():
    """The default fault storm: every seam hit over a ~1 s horizon."""
    return FaultPlan(name="storm", faults=[
        # The probe goes dark: V-state packets stop firing preempt IRQs,
        # so donated slices run to (adaptive, growing) expiry.
        FaultSpec("probe_outage", at_ns=100 * MILLISECONDS,
                  duration_ns=250 * MILLISECONDS),
        # Then it comes back lying: spurious preempt IRQs and suppressed
        # real ones.
        FaultSpec("probe_flaky", at_ns=450 * MILLISECONDS,
                  duration_ns=150 * MILLISECONDS,
                  params={"spurious_period_ns": 10 * MICROSECONDS,
                          "suppress_prob": 0.25}),
        # Cross-boundary IPIs get lossy — hotplug boot IPIs included.
        FaultSpec("ipi_drop", at_ns=100 * MILLISECONDS,
                  duration_ns=700 * MILLISECONDS, params={"prob": 0.6}),
        FaultSpec("ipi_delay", at_ns=850 * MILLISECONDS,
                  duration_ns=200 * MILLISECONDS,
                  params={"prob": 0.5, "delay_ns": 30 * MICROSECONDS}),
        # Two CP pCPUs flap offline/online; every re-online rides boot
        # IPIs through the lossy window above, so without retry a CP pCPU
        # can stay down for the rest of the storm.
        FaultSpec("cpu_offline", at_ns=150 * MILLISECONDS,
                  duration_ns=60 * MILLISECONDS, repeat=3,
                  period_ns=200 * MILLISECONDS, params={"cpu": "cp"}),
        FaultSpec("cpu_offline", at_ns=250 * MILLISECONDS,
                  duration_ns=60 * MILLISECONDS, repeat=2,
                  period_ns=250 * MILLISECONDS, params={"cpu": "cp:-2"}),
        # vCPU switches get 8x more expensive for a stretch.
        FaultSpec("vcpu_cost_spike", at_ns=300 * MILLISECONDS,
                  duration_ns=100 * MILLISECONDS, params={"factor": 8.0}),
        # The accelerator pipeline wedges briefly, twice.
        FaultSpec("accel_stall", at_ns=700 * MILLISECONDS,
                  duration_ns=int(1.5 * MILLISECONDS), repeat=2,
                  period_ns=100 * MILLISECONDS),
        # A DP service hangs in a non-preemptible routine, twice.
        FaultSpec("dp_stall", at_ns=500 * MILLISECONDS, repeat=2,
                  period_ns=150 * MILLISECONDS,
                  params={"stall_ns": 1 * MILLISECONDS, "service": 0}),
    ])


def _ipi_storm():
    return FaultPlan(name="ipi_storm", faults=[
        FaultSpec("ipi_drop", at_ns=50 * MILLISECONDS,
                  duration_ns=400 * MILLISECONDS, params={"prob": 0.6}),
        FaultSpec("ipi_delay", at_ns=500 * MILLISECONDS,
                  duration_ns=300 * MILLISECONDS,
                  params={"prob": 0.6, "delay_ns": 50 * MICROSECONDS}),
        FaultSpec("cpu_offline", at_ns=100 * MILLISECONDS,
                  duration_ns=50 * MILLISECONDS, repeat=4,
                  period_ns=120 * MILLISECONDS, params={"cpu": "cp"}),
    ])


def _probe_outage():
    return FaultPlan(name="probe_outage", faults=[
        FaultSpec("probe_outage", at_ns=50 * MILLISECONDS,
                  duration_ns=int(0.8 * SECONDS)),
    ])


PRESETS = {
    "storm": _storm,
    "ipi_storm": _ipi_storm,
    "probe_outage": _probe_outage,
}


def load_plan(spec):
    """Resolve a CLI ``--faults`` argument: preset name or JSON path."""
    if spec in PRESETS:
        return FaultPlan.preset(spec)
    if spec.endswith(".json"):
        return FaultPlan.from_json(spec)
    raise ValueError(
        f"--faults expects a preset ({sorted(PRESETS)}) or a .json "
        f"FaultPlan file, got {spec!r}")
