"""The fault injector: applies a :class:`FaultPlan` to a live deployment.

Each fault window opens with a traced ``fault.injected`` event (carrying a
stable ``fault`` id) and closes with a matching ``fault.cleared`` — the
pairing the :class:`~repro.obs.invariants.FaultRecoveryChecker` verifies.
Effects go through the simulation's real seams:

* ``ipi_drop``/``ipi_delay`` — a fault hook on :class:`IPIController`'s
  delivery chokepoint (every IPI, routed or not, passes through it);
* ``probe_outage``/``probe_flaky`` — the hardware workload probe's enable
  bit, a suppression veto, and spurious preempt IRQs;
* ``accel_stall`` — the accelerator's pipeline-stall horizon;
* ``vcpu_cost_spike`` — the live :class:`~repro.virt.costs.VirtCosts`;
* ``cpu_offline`` — real CPU hotplug (``kernel.offline_cpu`` then boot
  IPIs, which lossy-IPI windows can kill);
* ``dp_stall`` — a non-preemptible stall injected into a DP poll loop.

Every random decision draws from per-kind named streams of the
deployment's seeded :class:`~repro.sim.rng.RandomStreams`, so a fixed
seed reproduces the identical fault trace.
"""

from collections import Counter

from repro.faults.plan import FaultPlan
from repro.kernel.cpu import CpuState


class FaultInjector:
    """Arms the faults of one plan against one deployment."""

    def __init__(self, deployment, plan):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(faults=list(plan))
        self.deployment = deployment
        self.plan = plan
        self.env = deployment.env
        self.board = deployment.board
        self.kernel = deployment.board.kernel

        rng_root = deployment.rng.spawn("fault-injector")
        self._ipi_rng = rng_root.stream("ipi")
        self._probe_rng = rng_root.stream("probe")

        self.injected = 0
        self.cleared = 0
        self.by_kind = Counter()
        self._active = {}          # fault_id -> FaultSpec
        self._armed = False
        self._base_costs = None    # (vmenter_ns, vmexit_ns) at arm time

    # -- Arming ---------------------------------------------------------------

    def arm(self):
        """Schedule every fault occurrence; idempotent per injector."""
        if self._armed:
            return self
        self._armed = True
        self.kernel.ipi.set_fault_hook(self._ipi_fault)
        probe = self.board.hw_probe
        if probe is not None:
            probe.veto = self._probe_veto
        taichi = getattr(self.deployment, "taichi", None)
        if taichi is not None:
            costs = taichi.config.costs
            self._base_costs = (costs.vmenter_ns, costs.vmexit_ns)
        for index, spec in enumerate(self.plan.faults):
            for occurrence, start_ns in enumerate(spec.occurrences()):
                fault_id = f"{spec.kind}-{index}.{occurrence}"
                self._at(start_ns, lambda s=spec, f=fault_id: self._begin(s, f))
        self.env.metrics.add_source("faults.injector", self.stats)
        return self

    def _at(self, when_ns, action):
        delay = max(when_ns - self.env.now, 0)
        self.env.timeout(delay).callbacks.append(lambda _event: action())

    # -- Window lifecycle -----------------------------------------------------

    def _begin(self, spec, fault_id):
        apply = getattr(self, f"_apply_{spec.kind}")
        detail = apply(spec, fault_id)
        if detail is None:
            return  # not applicable to this deployment; nothing injected
        self.injected += 1
        self.by_kind[spec.kind] += 1
        self._active[fault_id] = spec
        self._record("fault.injected", detail.pop("cpu", "-"),
                     fault=fault_id, fault_kind=spec.kind,
                     until_ns=self.env.now + spec.duration_ns, **detail)
        if spec.duration_ns:
            self._at(self.env.now + spec.duration_ns,
                     lambda: self._end(spec, fault_id))
        else:
            self._end(spec, fault_id)

    def _end(self, spec, fault_id):
        if self._active.pop(fault_id, None) is None:
            return
        revert = getattr(self, f"_revert_{spec.kind}", None)
        detail = revert(spec, fault_id) if revert is not None else {}
        self.cleared += 1
        self._record("fault.cleared", (detail or {}).pop("cpu", "-"),
                     fault=fault_id, fault_kind=spec.kind, **(detail or {}))

    def _active_specs(self, kind):
        return [spec for spec in self._active.values() if spec.kind == kind]

    # -- IPI drop / delay -----------------------------------------------------

    def _apply_ipi_drop(self, spec, fault_id):
        return {"prob": spec.params.get("prob", 0.5)}

    def _apply_ipi_delay(self, spec, fault_id):
        return {"prob": spec.params.get("prob", 0.5),
                "delay_ns": spec.params.get("delay_ns", 30_000)}

    def _ipi_fault(self, dst_cpu, vector, payload):
        """IPIController fault hook: None, ('drop',) or ('delay', ns)."""
        drop_prob = max(
            (spec.params.get("prob", 0.5)
             for spec in self._active_specs("ipi_drop")), default=0.0)
        if drop_prob and self._ipi_rng.random() < drop_prob:
            return ("drop",)
        best = None
        for spec in self._active_specs("ipi_delay"):
            if self._ipi_rng.random() < spec.params.get("prob", 0.5):
                extra = int(spec.params.get("delay_ns", 30_000))
                best = extra if best is None else max(best, extra)
        if best is not None:
            return ("delay", best)
        return None

    # -- Hardware-probe outage / flakiness ------------------------------------

    def _apply_probe_outage(self, spec, fault_id):
        probe = self.board.hw_probe
        if probe is None:
            return None
        probe.enabled = False
        return {}

    def _revert_probe_outage(self, spec, fault_id):
        probe = self.board.hw_probe
        if not self._active_specs("probe_outage"):
            probe.enabled = True
        return {}

    def _apply_probe_flaky(self, spec, fault_id):
        probe = self.board.hw_probe
        if probe is None:
            return None
        period = int(spec.params.get("spurious_period_ns", 10_000))
        until_ns = self.env.now + spec.duration_ns
        self.env.process(self._spurious_loop(fault_id, period, until_ns),
                         name=f"fault-{fault_id}")
        return {"suppress_prob": spec.params.get("suppress_prob", 0.25)}

    def _probe_veto(self, dst_cpu_id):
        """Suppress a real V-state probe IRQ (false negative)?"""
        prob = max(
            (spec.params.get("suppress_prob", 0.25)
             for spec in self._active_specs("probe_flaky")), default=0.0)
        if prob and self._probe_rng.random() < prob:
            self._record("fault.probe_suppress", dst_cpu_id)
            return True
        return False

    def _spurious_loop(self, fault_id, period_ns, until_ns):
        """Fire false-positive preempt IRQs at V-state CPUs (misprediction)."""
        probe = self.board.hw_probe
        while self.env.now < until_ns and fault_id in self._active:
            yield self.env.timeout(period_ns)
            for cpu_id in probe.v_state_cpus():
                if probe.fire_spurious(cpu_id):
                    self._record("fault.probe_spurious", cpu_id)

    # -- Accelerator pipeline stall -------------------------------------------

    def _apply_accel_stall(self, spec, fault_id):
        accel = self.board.accelerator
        accel.stall_until_ns = max(accel.stall_until_ns,
                                   self.env.now + spec.duration_ns)
        return {"duration_ns": spec.duration_ns}

    # -- vCPU enter/exit cost spike -------------------------------------------

    def _apply_vcpu_cost_spike(self, spec, fault_id):
        if self._base_costs is None:
            return None
        self._recompute_costs(extra=spec.params.get("factor", 8.0))
        return {"factor": spec.params.get("factor", 8.0)}

    def _revert_vcpu_cost_spike(self, spec, fault_id):
        self._recompute_costs()
        return {}

    def _recompute_costs(self, extra=None):
        costs = self.deployment.taichi.config.costs
        factor = extra if extra is not None else 1.0
        for spec in self._active_specs("vcpu_cost_spike"):
            factor = max(factor, spec.params.get("factor", 8.0))
        base_enter, base_exit = self._base_costs
        costs.vmenter_ns = int(base_enter * factor)
        costs.vmexit_ns = int(base_exit * factor)

    # -- CPU hotplug storm ----------------------------------------------------

    def _resolve_cpu(self, spec):
        target = spec.params.get("cpu", "cp")
        if isinstance(target, str) and target.startswith("cp"):
            # "cp" is the last CP pCPU; "cp:<index>" indexes cp_cpu_ids.
            index = int(target[3:]) if target.startswith("cp:") else -1
            target = self.board.cp_cpu_ids[index]
        service_cpus = {service.cpu_id
                        for service in self.deployment.services}
        if target in service_cpus:
            return None  # never yank a CPU out from under a pinned poller
        return target

    def _apply_cpu_offline(self, spec, fault_id):
        cpu_id = self._resolve_cpu(spec)
        if cpu_id is None:
            return None
        self.kernel.offline_cpu(cpu_id)
        return {"cpu": cpu_id}

    def _revert_cpu_offline(self, spec, fault_id):
        cpu_id = self._resolve_cpu(spec)
        if cpu_id is None:
            return {}
        cpu = self.kernel.cpus[cpu_id]
        if cpu.state in (CpuState.OFFLINE, CpuState.BOOTING):
            # Recovery attempt: boot IPIs, which may themselves be dropped
            # by an overlapping ipi_drop window.  Without IPI retry the
            # CPU then stays down — exactly the degradation story.
            self.kernel.boot_cpu(cpu_id)
        return {"cpu": cpu_id}

    # -- DP service stall -----------------------------------------------------

    def _apply_dp_stall(self, spec, fault_id):
        services = self.deployment.services
        if not services:
            return None
        service = services[int(spec.params.get("service", 0)) % len(services)]
        stall_ns = int(spec.params.get("stall_ns", 2_000_000))
        service.inject_stall(stall_ns)
        return {"cpu": service.cpu_id, "service": service.name,
                "stall_ns": stall_ns}

    # -- Bookkeeping ----------------------------------------------------------

    def _record(self, kind, cpu_id, **detail):
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(self.env.now, cpu_id, kind, **detail)

    def stats(self):
        return {
            "plan": self.plan.name,
            "faults_injected": self.injected,
            "faults_cleared": self.cleared,
            "by_kind": dict(self.by_kind),
            "active": len(self._active),
            "ipi_dropped": self.kernel.ipi.dropped_fault,
            "ipi_delayed": self.kernel.ipi.delayed_fault,
        }

    def __repr__(self):
        return (f"<FaultInjector plan={self.plan.name!r} "
                f"injected={self.injected} active={len(self._active)}>")
