"""Module-global active fault plan (mirrors ``repro.obs.session``).

Experiments build their deployments deep inside helper functions; rather
than threading a plan through every constructor, the CLI (or a test)
activates a plan for a dynamic scope and ``Deployment.__init__`` arms a
:class:`~repro.faults.injector.FaultInjector` whenever one is active::

    with active_fault_plan(FaultPlan.preset("storm")):
        result = run_experiment("ext_production_soak")

Nesting replaces the active plan for the inner scope (``None`` suppresses
injection entirely), which is how ``ext_fault_resilience`` keeps control
of its own storm even under ``run --faults``.
"""

from contextlib import contextmanager

_ACTIVE_PLAN = None


def current_plan():
    """The fault plan deployments should arm right now, or None."""
    return _ACTIVE_PLAN


@contextmanager
def active_fault_plan(plan):
    """Make ``plan`` the active fault plan for the enclosed scope."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous
