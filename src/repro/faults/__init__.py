"""Seeded, declarative fault injection for the Tai Chi simulation.

The subsystem splits *what goes wrong* from *how it is applied*:

* :class:`~repro.faults.plan.FaultPlan` / :class:`~repro.faults.plan.FaultSpec`
  — declarative plans (JSON round-trip, named presets, time scaling);
* :class:`~repro.faults.injector.FaultInjector` — arms a plan against a
  live deployment through the simulation's real seams, emitting traced
  ``fault.*`` events;
* :func:`~repro.faults.session.active_fault_plan` — a dynamic-scope
  activation hook so ``taichi-experiments run --faults`` perturbs any
  experiment without threading a plan through every constructor.

The graceful-degradation counterpart lives in
:mod:`repro.core.degradation`.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    PRESETS,
    FaultPlan,
    FaultSpec,
    load_plan,
)
from repro.faults.session import active_fault_plan, current_plan

__all__ = [
    "FAULT_KINDS",
    "PRESETS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "active_fault_plan",
    "current_plan",
    "load_plan",
]
