"""The simulation environment: clock, scheduler queue, and run loop."""

from dataclasses import dataclass
from itertools import count
from time import perf_counter

from repro.obs.registry import MetricsRegistry
from repro.obs.session import current as _current_obs_session
from repro.obs.spans import SpanTracker
from repro.obs.tracer import Tracer
from repro.sim.errors import SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, PRIORITY_NORMAL, Timeout
from repro.sim.process import Process
from repro.sim.queues import SCHEDULERS, make_queue


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs, exposed as the ``engine`` scenario knob.

    ``fast_forward`` enables the analytic idle fast-forward: components
    whose only pending work is a pure timer chain (the DP poll loop's
    empty-poll budget) collapse the chain into one batched timeout and
    report the elided events via :meth:`Environment.note_fast_forward`.
    Results are byte-identical either way — only the engine's
    self-profile (events processed vs. skipped) differs.

    ``scheduler`` selects the pending-event queue implementation; see
    :mod:`repro.sim.queues`.  All queues pop in the same total order, so
    this is purely a throughput knob.
    """

    fast_forward: bool = True
    scheduler: str = "heap"

    def __post_init__(self):
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; "
                f"choose from {sorted(SCHEDULERS)}")


class Environment:
    """Owns the simulated clock and executes events in timestamp order.

    The clock is an integer count of nanoseconds since simulation start.
    Events scheduled for the same instant are ordered by priority, then by
    insertion order, making runs fully deterministic.

    Every environment carries the observability spine: ``self.tracer`` (a
    :class:`~repro.obs.tracer.Tracer`, disabled unless an observability
    session is tracing) and ``self.metrics`` (a
    :class:`~repro.obs.registry.MetricsRegistry`, shared with the active
    session if any).  The engine also profiles itself — events processed,
    events elided by the idle fast-forward, peak queue depth, wall time
    spent in :meth:`run` — exposed through :meth:`profile` and registered
    as the ``sim.engine`` metrics source.
    """

    def __init__(self, initial_time=0, config=None):
        self._now = int(initial_time)
        self.config = config if config is not None else EngineConfig()
        self._queue = make_queue(self.config.scheduler)
        self._eid = count()
        self._active_process = None

        # Engine self-profiling.
        self._events_processed = 0
        self._events_skipped = 0
        self._fast_forward_windows = 0
        self._heap_peak = 0
        self._wall_s = 0.0

        session = _current_obs_session()
        if session is not None:
            self.tracer = session.adopt_environment(self)
            self.metrics = session.metrics
        else:
            self.tracer = Tracer(enabled=False)
            self.metrics = MetricsRegistry()
        self.metrics.add_source("sim.engine", self.profile)
        # Causal request tracing rides alongside the flat tracer: always
        # constructed (instrumentation gates on ``spans.enabled``),
        # enabled when the active session asks for spans.
        self.spans = SpanTracker(self)
        if session is not None and getattr(session, "spans", False):
            self.spans.enable(exemplar_k=getattr(session, "exemplar_k",
                                                 None))

    @property
    def now(self):
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event, priority=PRIORITY_NORMAL, delay=0):
        """Queue ``event`` to be processed after ``delay`` nanoseconds."""
        queue = self._queue
        queue.push((self._now + int(delay), priority, next(self._eid), event))
        if len(queue) > self._heap_peak:
            self._heap_peak = len(queue)

    def peek(self):
        """Time of the next scheduled event, or ``None`` if the queue is empty."""
        entry = self._queue.peek()
        return entry[0] if entry is not None else None

    def step(self):
        """Process the single next event.

        Raises :class:`SimulationError` if the queue is empty, and re-raises
        an event's failure exception if nothing defused it.
        """
        try:
            when, _, _, event = self._queue.pop()
        except IndexError:
            raise SimulationError("no more events") from None

        self._now = when
        self._events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # An unhandled failure crashes the simulation loudly rather than
            # being silently dropped.
            exc = event._value
            raise exc

    def run(self, until=None):
        """Run until ``until`` (a time or an event), or until no events remain.

        If ``until`` is an event, its value is returned when it triggers.
        If it is a number, the clock is advanced exactly to it.
        """
        stop = None
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    return until.value
                stop = until
                stop.callbacks.append(_stop_callback)
            else:
                at = int(until)
                if at < self._now:
                    raise ValueError(f"until={at} is in the past (now={self._now})")
                stop = Timeout(self, at - self._now)
                stop.callbacks.append(_stop_callback)

        # The event loop is inlined (rather than calling self.step() per
        # event) — on soak workloads the extra frame per event was ~15% of
        # total wall time.
        queue = self._queue
        pop = queue.pop
        processed = 0
        wall_start = perf_counter()
        try:
            while queue:
                when, _, _, event = pop()
                self._now = when
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if event._ok is False and not event._defused:
                    # An unhandled failure crashes the simulation loudly
                    # rather than being silently dropped.
                    raise event._value
        except StopSimulation as exc:
            return exc.value
        finally:
            self._events_processed += processed
            self._wall_s += perf_counter() - wall_start

        if stop is not None and isinstance(until, Event) and not until.triggered:
            raise SimulationError("run() finished with the until-event untriggered")
        return None

    # -- Observability hooks --------------------------------------------------

    def add_trace_hook(self, hook):
        """Subscribe ``hook(event)`` to every trace event of this env.

        This is the inline-checker attachment point: a streaming invariant
        engine hooked here verifies causality *during* the run instead of
        post-hoc over a capture, and sees events even when the tracer's
        ring buffer drops them.  Enables the tracer.
        """
        return self.tracer.add_hook(hook)

    # -- Engine self-profiling ------------------------------------------------

    def note_fast_forward(self, skipped):
        """Record one analytic fast-forward window that elided ``skipped``
        events the stepped engine would have processed."""
        if skipped > 0:
            self._events_skipped += skipped
            self._fast_forward_windows += 1

    def profile(self):
        """DES self-profiling gauges (the ``sim.engine`` metrics source)."""
        sim_s = self._now / 1e9
        wall = self._wall_s
        processed = self._events_processed
        skipped = self._events_skipped
        return {
            "events_processed": processed,
            "events_skipped": skipped,
            "fast_forward_windows": self._fast_forward_windows,
            "skipped_ratio": round(skipped / (processed + skipped), 4)
            if processed + skipped else 0.0,
            "scheduler": self.config.scheduler,
            "fast_forward": self.config.fast_forward,
            "heap_peak": self._heap_peak,
            "heap_pending": len(self._queue),
            "sim_time_ns": self._now,
            "wall_time_s": round(wall, 6),
            "events_per_wall_s": round(processed / wall, 1) if wall > 0 else 0.0,
            "wall_s_per_sim_s": round(wall / sim_s, 6) if sim_s > 0 else 0.0,
        }

    # -- Convenience factories ------------------------------------------------

    def event(self):
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` firing after ``delay`` nanoseconds."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Spawn a :class:`Process` around ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Condition event triggering once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events):
        """Condition event triggering once any event in ``events`` has."""
        return AnyOf(self, events)

    def __repr__(self):
        return f"<Environment now={self._now} pending={len(self._queue)}>"


def _stop_callback(event):
    if event._ok:
        raise StopSimulation(event._value)
    # A failed until-event: surface the underlying exception.
    raise event._value
