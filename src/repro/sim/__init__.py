"""Discrete-event simulation engine underlying the Tai Chi reproduction.

This is a small, self-contained engine in the style of simpy: an
:class:`~repro.sim.environment.Environment` owns a simulated clock (integer
nanoseconds) and an event heap; *processes* are Python generators that yield
events (timeouts, stores, conditions) and may be interrupted.  All higher
layers (the kernel model, the virtualization model, the hardware model) are
built from these primitives.

Quick example::

    from repro.sim import Environment

    env = Environment()

    def worker(env):
        yield env.timeout(1_000)        # 1 microsecond
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert proc.value == "done"
"""

from repro.sim.environment import EngineConfig, Environment
from repro.sim.errors import Interrupt, SimulationError, StopSimulation
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process
from repro.sim.queues import CalendarQueue, HeapQueue, SCHEDULERS
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim.store import Store
from repro.sim.units import MILLISECONDS, MICROSECONDS, NANOSECONDS, SECONDS, ns_to_s, s_to_ns

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "EngineConfig",
    "Environment",
    "Event",
    "HeapQueue",
    "Interrupt",
    "MICROSECONDS",
    "MILLISECONDS",
    "NANOSECONDS",
    "Process",
    "RandomStreams",
    "SCHEDULERS",
    "SECONDS",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
    "derive_seed",
    "ns_to_s",
    "s_to_ns",
]
