"""Exception types raised by the simulation engine."""


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine itself."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early.

    User code normally never sees this; ``env.run(until=event)`` converts the
    triggering event's value into the return value of ``run``.
    """

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown *into* a process when another process interrupts it.

    The interrupted process receives this exception at its current yield
    point.  ``cause`` carries an arbitrary payload describing why the
    interrupt happened (for example a :class:`~repro.virt.vcpu.VMExit`
    reason when a vCPU is kicked off its backing physical CPU).
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The payload passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __repr__(self):
        return f"Interrupt(cause={self.args[0]!r})"
