"""Event primitives for the simulation engine.

An :class:`Event` is a one-shot occurrence: it starts *pending*, is
*triggered* exactly once (with a value or an exception), and after the
environment pops it from the heap it becomes *processed* and its callbacks
run.  Processes (see :mod:`repro.sim.process`) advance by yielding events.

All event classes use ``__slots__``: soaks create tens of millions of
short-lived events and the per-instance ``__dict__`` was the single
largest allocation on the hot path.
"""

from repro.sim.errors import SimulationError

# Sentinel for "not yet triggered".
_PENDING = object()

# Scheduling priorities: lower sorts earlier among simultaneous events.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot simulation event.

    Attributes:
        env: owning :class:`~repro.sim.environment.Environment`.
        callbacks: list of callables invoked with the event once processed,
            or ``None`` after processing (appending then is an error).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._defused = False

    @property
    def triggered(self):
        """True once the event has a value/exception scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded; only meaningful once triggered."""
        return self._ok

    @property
    def value(self):
        """The event's value (or exception instance if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception.

        The exception propagates into every process waiting on this event
        unless :meth:`defused` was set.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event):
        """Trigger this event with the state of another event.

        Used as a callback to chain events together.  ``event`` must
        itself be triggered already.
        """
        if event._ok is None:
            raise SimulationError(
                f"cannot trigger {self!r} from untriggered source {event!r}")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def defuse(self):
        """Mark a failed event as handled so it will not crash the run."""
        self._defused = True

    @property
    def defused(self):
        return self._defused

    def __repr__(self):
        state = "pending"
        if self.processed:
            state = "processed"
        elif self.triggered:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` nanoseconds after creation."""

    __slots__ = ("_delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = int(delay)
        self._ok = True
        self._value = value
        env.schedule(self, delay=self._delay)

    @property
    def delay(self):
        return self._delay

    def __repr__(self):
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of events to values for triggered conditions."""

    __slots__ = ("events",)

    def __init__(self, events):
        self.events = events

    def __getitem__(self, event):
        if event not in self.events:
            raise KeyError(repr(event))
        return event._value

    def __contains__(self, event):
        return event in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self):
        return len(self.events)

    def todict(self):
        return {event: event._value for event in self.events}

    def __eq__(self, other):
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        return NotImplemented

    def __repr__(self):
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """An event that triggers when ``evaluate(events, n_done)`` is true.

    Build with :class:`AllOf` / :class:`AnyOf` rather than directly.

    Once the condition triggers, its ``_check`` callback is pruned from
    every still-pending member event.  Long-lived members (a store's
    ``when_nonempty`` watcher held across thousands of ``AnyOf`` waits)
    would otherwise accumulate one dead callback per wait for the life
    of the soak.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")

        if self._evaluate(self._events, self._count) and not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)
            if self.triggered:
                # Already decided: later members never had _check attached
                # (or just triggered us) — drop it from the earlier ones.
                self._prune()
                break

    def _done_events(self):
        return [event for event in self._events if event.triggered]

    def _check(self, event):
        if self.triggered:
            return
        self._count += 1
        if not event._ok and not event.defused:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(ConditionValue(self._done_events()))
        if self.triggered:
            self._prune()

    def _prune(self):
        """Detach ``_check`` from members that will never need it again."""
        check = self._check
        for event in self._events:
            callbacks = event.callbacks
            if callbacks is not None and check in callbacks:
                callbacks.remove(check)

    @staticmethod
    def all_events(events, count):
        return len(events) == count

    @staticmethod
    def any_events(events, count):
        return count > 0 or not events


class AllOf(Condition):
    """Triggers when all given events have triggered."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers when any of the given events has triggered."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.any_events, events)
