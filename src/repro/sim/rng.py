"""Seeded random-number streams.

Every stochastic component draws from its own named stream derived from one
root seed, so adding a new component never perturbs the draws of existing
ones and whole experiments replay bit-identically.
"""

import numpy as np


class RandomStreams:
    """A factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed=0):
        self.seed = int(seed)
        self._streams = {}

    def stream(self, name):
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(_stable_hash(name),))
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def spawn(self, salt):
        """Derive a new independent :class:`RandomStreams` root."""
        return RandomStreams(seed=(self.seed * 1_000_003 + _stable_hash(str(salt))) % (2**63))

    def __repr__(self):
        return f"<RandomStreams seed={self.seed} streams={sorted(self._streams)}>"


def derive_seed(root_seed, *path):
    """Derive a child seed from ``root_seed`` and a component path.

    ``derive_seed(0, "node", "rack-03")`` is a pure function of its
    arguments — stable across processes, interpreter restarts and worker
    pools — so parallel runners can hand every shard a seed derived from
    one root and reproduce byte-identical results at any ``--jobs`` level.
    Components are stringified, so ints and strings mix freely.  Uses the
    same mixing arithmetic as :meth:`RandomStreams.spawn`.
    """
    value = int(root_seed) % (2**63)
    for part in path:
        value = (value * 1_000_003 + _stable_hash(str(part))) % (2**63)
    return value


def _stable_hash(name):
    """A process-independent 63-bit hash (``hash()`` is salted per process)."""
    value = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 1099511628211) % (2**63)
    return value
