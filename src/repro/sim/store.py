"""FIFO stores used as message queues between simulated components."""

from collections import deque

from repro.sim.events import Event


class StorePut(Event):
    """Event for a pending put; succeeds when the item is accepted."""

    __slots__ = ("item",)

    def __init__(self, store, item):
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Event for a pending get; succeeds with the retrieved item."""

    __slots__ = ()

    def __init__(self, store):
        super().__init__(store.env)


class Store:
    """An unbounded-or-bounded FIFO queue of arbitrary items.

    ``put`` succeeds immediately while below capacity; ``get`` succeeds
    immediately when items are available, else parks the getter.  The
    ordering of both items and waiters is strictly FIFO, which keeps packet
    queues and run queues deterministic.
    """

    __slots__ = ("env", "capacity", "name", "items", "_getters", "_putters",
                 "_nonempty_watchers")

    def __init__(self, env, capacity=None, name=None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.name = name or "store"
        self.items = deque()
        self._getters = deque()
        self._putters = deque()
        self._nonempty_watchers = []

    def __len__(self):
        return len(self.items)

    @property
    def is_empty(self):
        return not self.items

    @property
    def is_full(self):
        return self.capacity is not None and len(self.items) >= self.capacity

    def put(self, item):
        """Queue ``item``; returns an event that fires once accepted."""
        event = StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self):
        """Request the next item; returns an event firing with the item."""
        event = StoreGet(self)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self):
        """Non-blocking get: pop and return the head item or ``None``."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def get_batch(self, max_items):
        """Non-blocking bulk get of up to ``max_items`` items (rx_burst)."""
        batch = []
        while self.items and len(batch) < max_items:
            batch.append(self.items.popleft())
        if batch:
            self._dispatch()
        return batch

    def when_nonempty(self):
        """Event that fires once the store holds at least one item.

        Unlike :meth:`get`, this does not consume anything — poll-mode
        consumers use it to sleep through idle periods without losing their
        place at the queue.
        """
        event = StoreGet(self)
        if self.items:
            event.succeed(len(self.items))
        else:
            self._nonempty_watchers.append(event)
        return event

    def cancel_nonempty(self, event):
        """Withdraw a pending :meth:`when_nonempty` watcher.

        Poll-mode consumers that stopped caring (their wait was satisfied by
        a different store or a control event) call this so abandoned
        watchers don't pile up for the life of a soak.  A watcher that has
        already fired, or was never registered, is ignored.
        """
        try:
            self._nonempty_watchers.remove(event)
        except ValueError:
            pass

    def _dispatch(self):
        # Move items from pending putters to the buffer, then satisfy getters.
        progressed = True
        while progressed:
            progressed = False
            while self._putters and not self.is_full:
                put_event = self._putters.popleft()
                self.items.append(put_event.item)
                put_event.succeed()
                progressed = True
            while self._getters and self.items:
                get_event = self._getters.popleft()
                get_event.succeed(self.items.popleft())
                progressed = True
            if self.items and self._nonempty_watchers:
                watchers, self._nonempty_watchers = self._nonempty_watchers, []
                for watcher in watchers:
                    watcher.succeed(len(self.items))
                progressed = True

    def __repr__(self):
        return f"<Store {self.name!r} items={len(self.items)} cap={self.capacity}>"
