"""Pluggable scheduler queues for the simulation engine.

The engine's contract is a total order over schedule entries — tuples of
``(time, priority, eid, event)`` where ``eid`` is a monotonically
increasing insertion counter — popped in ascending tuple order.  Because
the order is total (eids never collide), *any* correct priority queue
yields the exact same pop sequence, so the queue implementation is a
pure performance knob: swapping it can never change simulation results.

Two implementations ship:

* :class:`HeapQueue` — the reference ``heapq`` binary heap (default);
* :class:`CalendarQueue` — a classic Brown calendar queue: an array of
  time-bucketed lists scanned from the current clock position, giving
  amortized O(1) push/pop when event times are roughly uniform (the
  usual DES regime).  Bucket count and width adapt to the live entry
  population; every resize decision is a pure function of the push/pop
  sequence, keeping runs deterministic.

``tests/sim/test_queues.py`` cross-checks both for identical pop order
on randomized and adversarial schedules.
"""

from heapq import heappop, heappush

#: Registry name -> class, used by :func:`make_queue`.
SCHEDULERS = {}


def make_queue(name):
    """Construct the scheduler queue registered under ``name``."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler queue {name!r}; "
            f"choose from {sorted(SCHEDULERS)}") from None
    return cls()


class HeapQueue:
    """Reference binary-heap queue (``heapq``)."""

    __slots__ = ("_entries",)

    def __init__(self):
        self._entries = []

    def push(self, entry):
        heappush(self._entries, entry)

    def pop(self):
        return heappop(self._entries)

    def peek(self):
        """The smallest entry without removing it, or ``None``."""
        return self._entries[0] if self._entries else None

    def __len__(self):
        return len(self._entries)

    def __bool__(self):
        return bool(self._entries)


class CalendarQueue:
    """Calendar queue with adaptive bucket count and width.

    Entries land in ``buckets[(time // width) % n_buckets]``.  A pop
    scans at most one full "year" of buckets starting from the slot of
    the last popped entry; each visited bucket is searched only for
    entries belonging to the current slot, so the common case touches
    one short list.  If a whole year passes without a hit (a sparse
    far-future schedule), a direct min scan over all buckets resolves
    the pop and re-anchors the slot pointer.
    """

    __slots__ = ("_buckets", "_n", "_width", "_size", "_cur_slot")

    #: Resize thresholds: grow at 2x occupancy, shrink below 1/8th.
    _MIN_BUCKETS = 16

    def __init__(self, width=1024, n_buckets=64):
        if width <= 0 or n_buckets <= 0:
            raise ValueError("width and n_buckets must be positive")
        self._width = int(width)
        self._n = int(n_buckets)
        self._buckets = [[] for _ in range(self._n)]
        self._size = 0
        self._cur_slot = 0

    def push(self, entry):
        time = entry[0]
        self._buckets[(time // self._width) % self._n].append(entry)
        self._size += 1
        slot = time // self._width
        if slot < self._cur_slot:
            # Same-instant scheduling while mid-slot: re-anchor backward so
            # the scan cannot start past the new entry.
            self._cur_slot = slot
        if self._size > 2 * self._n:
            self._resize(self._n * 2)

    def pop(self):
        if self._size == 0:
            raise IndexError("pop from an empty CalendarQueue")
        width = self._width
        n = self._n
        slot = self._cur_slot
        for _ in range(n):
            bucket = self._buckets[slot % n]
            if bucket:
                best = None
                best_i = -1
                for i, entry in enumerate(bucket):
                    if entry[0] // width == slot and (
                            best is None or entry < best):
                        best = entry
                        best_i = i
                if best is not None:
                    bucket[best_i] = bucket[-1]
                    bucket.pop()
                    self._size -= 1
                    self._cur_slot = slot
                    self._maybe_shrink()
                    return best
            slot += 1
        return self._pop_direct()

    def peek(self):
        """The smallest entry without removing it, or ``None``."""
        if self._size == 0:
            return None
        width = self._width
        n = self._n
        slot = self._cur_slot
        for _ in range(n):
            bucket = self._buckets[slot % n]
            if bucket:
                best = None
                for entry in bucket:
                    if entry[0] // width == slot and (
                            best is None or entry < best):
                        best = entry
                if best is not None:
                    return best
            slot += 1
        best = None
        for bucket in self._buckets:
            for entry in bucket:
                if best is None or entry < best:
                    best = entry
        return best

    def _pop_direct(self):
        """Fallback: global min scan (sparse, far-future schedules)."""
        best = None
        best_bucket = None
        best_i = -1
        for bucket in self._buckets:
            for i, entry in enumerate(bucket):
                if best is None or entry < best:
                    best = entry
                    best_bucket = bucket
                    best_i = i
        best_bucket[best_i] = best_bucket[-1]
        best_bucket.pop()
        self._size -= 1
        self._cur_slot = best[0] // self._width
        self._maybe_shrink()
        return best

    def _maybe_shrink(self):
        if self._n > self._MIN_BUCKETS and self._size < self._n // 8:
            self._resize(max(self._n // 2, self._MIN_BUCKETS))

    def _resize(self, n_buckets):
        entries = [entry for bucket in self._buckets for entry in bucket]
        if entries:
            lo = min(entry[0] for entry in entries)
            hi = max(entry[0] for entry in entries)
            # Aim for a handful of entries per bucket across the live span;
            # clamping keeps degenerate spans (all-same-time) sane.
            self._width = max((hi - lo) // max(len(entries), 1) * 4, 1)
        self._n = n_buckets
        self._buckets = [[] for _ in range(n_buckets)]
        self._size = 0
        anchor = self._cur_slot * 1  # slot indices change with width
        self._cur_slot = min(
            (entry[0] // self._width for entry in entries),
            default=anchor)
        for entry in entries:
            self._buckets[(entry[0] // self._width) % self._n].append(entry)
            self._size += 1

    def __len__(self):
        return self._size

    def __bool__(self):
        return self._size > 0


SCHEDULERS["heap"] = HeapQueue
SCHEDULERS["calendar"] = CalendarQueue
