"""Processes: generator-driven actors that advance by yielding events."""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event, PRIORITY_URGENT, _PENDING


class _InterruptEvent(Event):
    """Internal urgent event used to deliver an interrupt to a process."""

    __slots__ = ()

    def __init__(self, env, process, cause):
        super().__init__(env)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [process._resume]
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """Wraps a generator; the process *is* the event of its termination.

    The generator yields :class:`~repro.sim.events.Event` instances; when a
    yielded event is processed, the generator is resumed with the event's
    value (or has its exception thrown in).  Returning from the generator
    triggers the process event with the return value.

    Processes can be interrupted with :meth:`interrupt`, which raises
    :class:`~repro.sim.errors.Interrupt` inside the generator at its current
    yield point.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env, generator, name=None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # The event the process currently waits on (None while resuming).
        self._target = None
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks = [self._resume]
        env.schedule(init, priority=PRIORITY_URGENT)

    @property
    def target(self):
        """The event this process is currently waiting on (or ``None``)."""
        return self._target

    @property
    def is_alive(self):
        """True until the generator has terminated."""
        return self._value is _PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its yield point."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        _InterruptEvent(self.env, self, cause)

    def _resume(self, event):
        """Advance the generator with the state of ``event``."""
        env = self.env
        env._active_process = self
        # Forget the old target; if we are resumed by an interrupt the real
        # target may still fire later, in which case its callback must no
        # longer point at us.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defuse()
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                self._ok = True
                self._value = exc.value
                env.schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                event = Event(env)
                event._ok = False
                event._value = exc
                continue

            if next_event.callbacks is not None:
                # Event not yet processed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: loop around immediately with it.
            event = next_event

        env._active_process = None

    def __repr__(self):
        return f"<Process {self.name!r} at {id(self):#x}>"
