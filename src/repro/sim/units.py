"""Time-unit constants for the simulation clock.

The simulated clock counts integer nanoseconds.  These constants make call
sites read naturally, e.g. ``env.timeout(50 * MICROSECONDS)`` for the vCPU
scheduler's initial time slice.
"""

NANOSECONDS = 1
MICROSECONDS = 1_000
MILLISECONDS = 1_000_000
SECONDS = 1_000_000_000


def s_to_ns(seconds):
    """Convert (possibly fractional) seconds to integer nanoseconds."""
    return int(round(seconds * SECONDS))


def ns_to_s(nanoseconds):
    """Convert integer nanoseconds to float seconds."""
    return nanoseconds / SECONDS


def ns_to_us(nanoseconds):
    """Convert integer nanoseconds to float microseconds."""
    return nanoseconds / MICROSECONDS


def ns_to_ms(nanoseconds):
    """Convert integer nanoseconds to float milliseconds."""
    return nanoseconds / MILLISECONDS
