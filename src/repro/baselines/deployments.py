"""Deployment builders: board + DP services + a CP scheduling policy."""

from repro.core import TaiChi, TaiChiConfig
from repro.dp import DPServiceParams, deploy_dp_services
from repro.hw import SmartNIC
from repro.sim import EngineConfig, Environment, RandomStreams


class Deployment:
    """A fully wired system under test.

    Subclasses override :meth:`_configure` to install their scheduler and
    must set :attr:`cp_affinity` — the CPU set CP tasks bind to.  The
    workload drivers only ever touch :attr:`board`, :attr:`services` and
    :attr:`cp_affinity`, so every system is exercised identically.
    """

    name = "base"

    def __init__(self, seed=0, board_config=None, dp_kind="net",
                 dp_params=None, dp_cpu_ids=None, engine=None):
        self.env = Environment(config=engine or EngineConfig())
        self.rng = RandomStreams(seed=seed)
        self.board = SmartNIC(self.env, config=board_config, rng=self.rng)
        self.dp_kind = dp_kind
        self.dp_params = dp_params or DPServiceParams()
        self.taichi = None
        self.tenancy = None  # set by TenancyManager on multi-tenant boards
        self.cp_affinity = set(self.board.cp_cpu_ids)
        self._dp_cpu_ids = (
            list(dp_cpu_ids) if dp_cpu_ids is not None else self.board.dp_cpu_ids
        )
        self.services = []
        self._configure()
        # Fault injection: any plan active at construction time (see
        # repro.faults.session) arms an injector against this deployment.
        from repro.faults.session import current_plan
        plan = current_plan()
        self.fault_injector = None
        if plan is not None:
            from repro.faults.injector import FaultInjector
            self.fault_injector = FaultInjector(self, plan).arm()

    # -- Subclass hooks -----------------------------------------------------------

    def _configure(self):
        self._deploy_services()

    def _deploy_services(self, params=None):
        self.services = deploy_dp_services(
            self.board, self.dp_kind, cpu_ids=self._dp_cpu_ids,
            params=params or self.dp_params,
        )
        return self.services

    # -- Conveniences for workload drivers --------------------------------------------

    @property
    def kernel(self):
        return self.board.kernel

    def run(self, until_ns):
        self.env.run(until=until_ns)

    def warmup(self, ns=2_000_000):
        """Advance past boot transients (vCPU onlining etc.)."""
        self.env.run(until=self.env.now + ns)

    def dp_processing_ns(self):
        return sum(service.processing_ns for service in self.services)

    def stats(self):
        data = {
            "name": self.name,
            "dp_processing_ns": self.dp_processing_ns(),
            "sched_latency_mean_ns": self.kernel.sched_latency.mean,
        }
        if self.taichi is not None:
            data["taichi"] = self.taichi.stats()
        return data

    def __repr__(self):
        return f"<Deployment {self.name!r} services={len(self.services)}>"


class StaticPartitionDeployment(Deployment):
    """Production baseline: static 8 DP / 4 CP partition, no sharing."""

    name = "static"


class TaiChiDeployment(Deployment):
    """The full Tai Chi framework."""

    name = "taichi"

    def __init__(self, taichi_config=None, **kwargs):
        self._taichi_config = taichi_config or TaiChiConfig()
        super().__init__(**kwargs)

    def _configure(self):
        self._deploy_services()
        self.taichi = TaiChi(self.board, self._taichi_config)
        self.taichi.install()
        for service in self.services:
            self.taichi.attach_dp_service(service)
        self.cp_affinity = self.taichi.cp_affinity()


class TaiChiNoHwProbeDeployment(TaiChiDeployment):
    """Ablation: software probe only; DP resumes on slice expiry."""

    name = "taichi-no-hw-probe"

    def __init__(self, taichi_config=None, **kwargs):
        config = taichi_config or TaiChiConfig()
        config.hw_probe_enabled = False
        super().__init__(taichi_config=config, **kwargs)


class TaiChiVDPDeployment(TaiChiDeployment):
    """Type-1 stand-in: DP services themselves execute in vCPU contexts.

    Modeled by applying the guest-mode work tax (nested page tables,
    exit-heavy I/O) to the CPUs executing DP services; the Tai Chi
    machinery is otherwise identical, matching Section 6.3's Tai Chi-vDP.
    """

    name = "taichi-vdp"

    def __init__(self, guest_tax=1.07, **kwargs):
        self._guest_tax = guest_tax
        super().__init__(**kwargs)

    def _configure(self):
        super()._configure()
        for cpu_id in self._dp_cpu_ids:
            self.board.kernel.cpus[cpu_id].work_tax = self._guest_tax


class Type2Deployment(Deployment):
    """QEMU+KVM stand-in (Section 3.4 / 6.3).

    Device emulation and the guest OS permanently occupy one DP CPU
    (services deploy on the remaining seven); the emulated virtio backend
    adds a per-packet overhead on the I/O path; CP tasks run inside the
    guest, paying the guest-mode tax on the CP partition.  Native DP-CP
    IPC is broken — device-management interactions pay an RPC surcharge
    (``rpc_extra_ns`` consumed by callers that honor it).
    """

    name = "type2"

    def __init__(self, emulation_overhead=1.12, guest_cp_tax=1.08,
                 rpc_extra_ns=150_000, **kwargs):
        self._emulation_overhead = emulation_overhead
        self._guest_cp_tax = guest_cp_tax
        self.rpc_extra_ns = rpc_extra_ns
        super().__init__(**kwargs)

    def _configure(self):
        # One DP CPU is lost to QEMU + the guest OS.
        self._dp_cpu_ids = self._dp_cpu_ids[:-1]
        params = DPServiceParams(**{**self.dp_params.__dict__,
                                    "work_scale": self._emulation_overhead})
        self.dp_params = params
        self._deploy_services(params)
        for cpu_id in self.board.cp_cpu_ids:
            self.board.kernel.cpus[cpu_id].work_tax = self._guest_cp_tax


class NaiveCoscheduleDeployment(Deployment):
    """CP tasks co-scheduled directly onto DP CPUs by the kernel.

    The Figure 4 motivation case: when the DP service idles, the kernel
    runs CP tasks on its CPU; a CP task inside a non-preemptible routine
    then delays the DP service's wakeup by up to the routine length.
    """

    name = "naive"

    def _configure(self):
        self._deploy_services()
        self.cp_affinity = set(self._dp_cpu_ids) | set(self.board.cp_cpu_ids)


DEPLOYMENTS = {
    cls.name: cls
    for cls in (
        StaticPartitionDeployment,
        TaiChiDeployment,
        TaiChiNoHwProbeDeployment,
        TaiChiVDPDeployment,
        Type2Deployment,
        NaiveCoscheduleDeployment,
    )
}


def build_deployment(name, **kwargs):
    """Factory: construct a deployment by registry name.

    Delegates to the arm registry (:mod:`repro.scenario.arms`), which
    validates knobs against per-arm metadata — an unknown kwarg reports
    the arm name and its accepted knob set instead of a bare TypeError.
    Imported lazily: the registry wraps the classes defined above.
    """
    from repro.scenario.arms import build_arm

    return build_arm(name, **kwargs)
