"""Comparison systems for the evaluation.

Every deployment builds the same SmartNIC board and DP workload surface but
schedules CP tasks differently:

* ``static`` — the production SOTA baseline (Section 6.1): fixed 8 DP / 4
  CP CPU partition, no sharing;
* ``taichi`` — the full framework;
* ``taichi-no-hw-probe`` — Tai Chi with the hardware workload probe
  disabled (Table 5's ablation);
* ``taichi-vdp`` — type-1 stand-in: identical to Tai Chi but DP services
  execute in vCPU contexts, paying the guest-mode tax (Section 6.3);
* ``type2`` — QEMU+KVM stand-in: one DP CPU consumed by device emulation
  and the guest OS, emulation overhead on the I/O path, CP inside a guest;
* ``naive`` — direct co-scheduling of CP tasks onto DP CPUs through the
  kernel scheduler (the Figure 4 motivation case).
"""

from repro.baselines.deployments import (
    DEPLOYMENTS,
    Deployment,
    NaiveCoscheduleDeployment,
    StaticPartitionDeployment,
    TaiChiDeployment,
    TaiChiNoHwProbeDeployment,
    TaiChiVDPDeployment,
    Type2Deployment,
    build_deployment,
)

__all__ = [
    "DEPLOYMENTS",
    "Deployment",
    "NaiveCoscheduleDeployment",
    "StaticPartitionDeployment",
    "TaiChiDeployment",
    "TaiChiNoHwProbeDeployment",
    "TaiChiVDPDeployment",
    "Type2Deployment",
    "build_deployment",
]
