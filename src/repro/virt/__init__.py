"""Virtualization substrate: vCPU contexts, VM-exits, backing grants.

Hybrid virtualization (Section 3.4) is modeled by making a
:class:`~repro.virt.vcpu.VirtualCPU` a *native kernel CPU* whose executor
only advances while it holds a :class:`~repro.virt.grant.BackingGrant` from
the vCPU scheduler.  Grant revocation is a VM-exit: unlike kernel
preemption it can interrupt the executor mid-instruction — even inside a
non-preemptible kernel section — with the remaining work frozen in place.
That single property is the paper's escape hatch from ms-scale
non-preemptible routines.
"""

from repro.virt.costs import VirtCosts
from repro.virt.grant import BackingGrant
from repro.virt.vcpu import VirtualCPU
from repro.virt.vmexit import VMExitReason

__all__ = ["BackingGrant", "VirtCosts", "VirtualCPU", "VMExitReason"]
