"""Cost constants of the hardware virtualization model.

The headline number is the ~2 microsecond vCPU context switch the paper
repeatedly cites (Sections 3.4 and 4.3): entering plus exiting guest mode.
``guest_work_tax`` models nested-page-table and exit-heavy slowdown of code
executed *inside* a vCPU, which only matters for the type-1 baseline where
DP services themselves run in guest mode.
"""

from dataclasses import dataclass


@dataclass
class VirtCosts:
    vmenter_ns: int = 800
    vmexit_ns: int = 1_200
    posted_interrupt_inject_ns: int = 200   # no exit needed when running
    ipi_source_exit_ns: int = 1_500         # exit + reissue for guest IPIs
    guest_work_tax: float = 1.0             # multiplier on guest instructions

    @property
    def switch_total_ns(self):
        """The famous ~2 us vCPU context-switch latency."""
        return self.vmenter_ns + self.vmexit_ns
