"""Virtual CPUs: native kernel CPUs gated on a backing grant.

A :class:`VirtualCPU` is registered with the same kernel as the physical
CPUs (hybrid virtualization): the OS schedules threads onto it through the
ordinary run-queue machinery and standard affinity.  The only difference is
that its executor advances simulated time *only while backed* by a
:class:`~repro.virt.grant.BackingGrant`; revocation freezes whatever was
in flight — including non-preemptible kernel sections — until the next
grant, which is exactly what VM-exit does to a guest.
"""

from repro.kernel.cpu import CPU
from repro.virt.vmexit import VMExitReason


class RevokeCause:
    """Interrupt cause delivered to a vCPU executor when its grant ends."""

    def __init__(self, reason):
        self.reason = reason

    def __repr__(self):
        return f"<revoke {self.reason}>"


class VirtualCPU(CPU):
    is_virtual = True

    def __init__(self, kernel, cpu_id, online=False, lapic_id=None, work_tax=1.0):
        # Attributes must exist before CPU.__init__ may start the executor.
        self.backing = None
        self._grant_waiter = None
        self.lapic_id = lapic_id if lapic_id is not None else f"lapic-{cpu_id}"
        self.work_tax = float(work_tax)
        self.frozen_ns = 0
        self.backed_ns = 0
        self.halt_signals = 0
        self.revocations = 0
        # Owning tenant id on multi-tenant boards (None elsewhere).
        self.tenant_id = None
        super().__init__(kernel, cpu_id, online=online)

    # -- Grant plumbing (called from the vCPU scheduler on a pCPU) -----------------

    def set_backing(self, grant):
        """Begin executing under ``grant`` (the VM-enter moment)."""
        if self.backing is not None:
            raise RuntimeError(f"{self!r} is already backed by {self.backing!r}")
        self.backing = grant
        if self._grant_waiter is not None and not self._grant_waiter.triggered:
            self._grant_waiter.succeed(grant)

    def revoke(self, reason=VMExitReason.EXTERNAL):
        """End the current grant (the VM-exit moment); freezes the executor."""
        grant = self.backing
        if grant is None:
            return
        self.backing = None
        self.revocations += 1
        self.backed_ns += self.env.now - grant.granted_at_ns
        grant.finish(reason)
        if (
            self._interrupt_ok
            and self._idle_wakeup is None
            and self._grant_waiter is None
            and self.env.active_process is not self._proc
        ):
            self._proc.interrupt(RevokeCause(reason))

    @property
    def is_backed(self):
        return self.backing is not None

    def placement_load(self):
        """Unbacked vCPUs are less attractive wake targets than idle pCPUs.

        A thread placed on an unbacked vCPU waits for the next donated
        slice; the half-point penalty steers wakes toward genuinely idle
        physical CPUs while still letting loaded pCPUs overflow onto vCPUs
        (which is the entire point of the framework).
        """
        return self.load() + (0.0 if self.is_backed else 0.5)

    @property
    def holds_any_lock(self):
        """True if any thread bound to this vCPU currently holds a spinlock.

        Used for the paper's lock-safe CP-to-DP scheduling: a preempted
        lock-holding vCPU must be re-backed immediately elsewhere.
        """
        if self.current is not None and self.current.holds_locks:
            return True
        return any(thread.holds_locks for thread in self.runqueue.threads())

    # -- Executor extension points ---------------------------------------------------

    def _gate(self):
        while self.backing is None:
            waiter = self.env.event()
            self._grant_waiter = waiter
            yield from self._await(waiter, busy=False)
            self._grant_waiter = None

    def _handle_cause(self, cause):
        if not isinstance(cause, RevokeCause):
            return
        start = self.env.now
        while self.backing is None:
            waiter = self.env.event()
            self._grant_waiter = waiter
            yield from self._await(waiter, busy=False)
            self._grant_waiter = None
        self.frozen_ns += self.env.now - start

    def on_idle_enter(self):
        grant = self.backing
        if grant is not None and grant.active:
            self.halt_signals += 1
            grant.signal_halt()
