"""VM-exit reasons, the feedback signal for both adaptive algorithms.

The vCPU scheduler doubles a vCPU's time slice when the last exit was
``TIMESLICE_EXPIRED`` (the DP CPU stayed idle) and resets it on
``HW_PROBE_IRQ`` (real traffic arrived).  The software workload probe
adjusts its empty-poll threshold off the same signal in the opposite
direction (Section 4.3).
"""

import enum


class VMExitReason(enum.Enum):
    TIMESLICE_EXPIRED = "timeslice_expired"  # slice ran out, DP still idle
    HW_PROBE_IRQ = "hw_probe_irq"            # accelerator saw a DP packet
    HALT = "halt"                            # vCPU ran out of runnable work
    IPI_SEND = "ipi_send"                    # guest sent an IPI (source exit)
    MIGRATION = "migration"                  # lock-safe re-backing elsewhere
    EXTERNAL = "external"                    # host-initiated stop
