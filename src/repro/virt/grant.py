"""Backing grants: the contract between a pCPU slice and a vCPU."""

from repro.virt.vmexit import VMExitReason


class BackingGrant:
    """Permission for a vCPU to execute on a physical CPU for one slice.

    The granting side (Tai Chi's vCPU scheduler, running in a softirq on
    the physical CPU) waits for whichever ends the slice first:

    * ``expired`` — the adaptive time slice ran out;
    * ``revoke_request`` — the hardware workload probe detected DP traffic;
    * ``halted`` — the vCPU went idle (no runnable CP work).
    """

    def __init__(self, env, pcpu, vcpu, slice_ns):
        self.env = env
        self.pcpu = pcpu
        self.vcpu = vcpu
        self.slice_ns = int(slice_ns)
        self.granted_at_ns = env.now
        self.expired = env.timeout(self.slice_ns)
        self.revoke_request = env.event()
        self.halted = env.event()
        self.end_reason = None
        self.ended_at_ns = None

    def request_revoke(self, reason=VMExitReason.HW_PROBE_IRQ):
        """Ask the granting side to take the pCPU back (hardware probe)."""
        if not self.revoke_request.triggered:
            self.revoke_request.succeed(reason)

    def signal_halt(self):
        """The vCPU reports it has no runnable work left."""
        if not self.halted.triggered:
            self.halted.succeed(VMExitReason.HALT)

    @property
    def active(self):
        return self.end_reason is None

    def finish(self, reason):
        self.end_reason = reason
        self.ended_at_ns = self.env.now

    def resolve_end_reason(self):
        """Which condition fired first (revocation beats expiry ties)."""
        if self.revoke_request.triggered:
            return self.revoke_request.value
        if self.halted.triggered:
            return VMExitReason.HALT
        return VMExitReason.TIMESLICE_EXPIRED

    def __repr__(self):
        return (
            f"<BackingGrant pcpu={self.pcpu.cpu_id} vcpu={self.vcpu.cpu_id} "
            f"slice={self.slice_ns} reason={self.end_reason}>"
        )
