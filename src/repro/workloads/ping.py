"""The ping workload: round-trip-time statistics (Table 5)."""

from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder
from repro.sim.units import MILLISECONDS

PING_SERVICE_NS = 1_500


def run_ping(deployment, duration_ns, interval_ns=1 * MILLISECONDS,
             queue_index=0):
    """Send ICMP-like probes on one queue; returns min/avg/max/mdev (ns).

    Each probe is one traversal of the full DP path (driver, accelerator,
    poll loop, NIC, wire).  The paper's Table 5 compares these statistics
    across baseline / Tai Chi / Tai Chi-without-hardware-probe.
    """
    env = deployment.env
    recorder = LatencyRecorder(name="rtt")
    queue_wait = LatencyRecorder(name="rx-queue-wait")
    queue_id = deployment.services[queue_index].queue_ids[0]
    accelerator = deployment.board.accelerator

    def _pinger():
        deadline = env.now + duration_ns
        while env.now < deadline:
            done = env.event()
            request = IORequest(PacketKind.NET_TX, 64, queue_id,
                                service_ns=PING_SERVICE_NS, done=done)
            accelerator.submit(request)
            result = yield done
            recorder.record(result.total_latency_ns)
            if result.queue_wait_ns is not None:
                queue_wait.record(result.queue_wait_ns)
            yield env.timeout(interval_ns)

    proc = env.process(_pinger(), name="ping")
    deployment.run(env.now + duration_ns + 2 * MILLISECONDS)
    del proc
    return {
        "case": "ping",
        "count": recorder.count,
        "min_ns": recorder.min,
        "avg_ns": recorder.mean,
        "max_ns": recorder.max,
        "mdev_ns": recorder.mdev,
        "p99_ns": recorder.p99() if recorder.count else 0,
        # Scheduling-only component: rx-ready to DP pickup, free of wire
        # jitter (the hardware probe's hiding is visible exactly here).
        "queue_wait_avg_ns": queue_wait.mean,
        "queue_wait_p99_ns": queue_wait.p99() if queue_wait.count else 0,
        "queue_wait_max_ns": queue_wait.max,
    }
