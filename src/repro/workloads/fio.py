"""fio-equivalent storage benchmark: 4 KB blocks, 16 jobs with libaio."""

from repro.workloads.traffic import StorageClients

BLOCK_BYTES = 4096
SUBMIT_SERVICE_NS = 2_500   # SPDK-side submission processing per block


def run_fio(deployment, duration_ns, n_jobs=16, iodepth=8):
    """fio_rw: 4 KB random I/O across all storage DP services.

    Requires a deployment built with ``dp_kind="storage"``.  IOPS is
    CPU-bound on the SmartNIC: every block costs a submission pass and a
    completion-queue pass on a DP core, so losing a core (type-2) or
    paying a guest tax (type-1) shows up directly.
    """
    if deployment.dp_kind != "storage":
        raise ValueError("run_fio needs a deployment with dp_kind='storage'")
    clients = StorageClients(
        deployment, n_jobs=n_jobs, iodepth=iodepth,
        block_bytes=BLOCK_BYTES, service_ns=SUBMIT_SERVICE_NS,
        rng=deployment.rng.stream("fio"),
    )
    clients.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns)
    iops = clients.completed.per_second(duration_ns)
    return {
        "case": "fio_rw",
        "n_jobs": n_jobs,
        "iodepth": iodepth,
        "iops": iops,
        "bw_mbps": iops * BLOCK_BYTES / 1e6,
        "lat_mean_ns": clients.io_latency.mean,
        "lat_p99_ns": clients.io_latency.p99() if clients.io_latency.count else 0,
    }
