"""The synth_cp benchmark (Sections 6.1-6.2).

Generates ``concurrency`` control-plane tasks of ~50 ms each, distributed
across the deployment's CP affinity, while the data plane is held at the
production-p99 30 % utilization.  The metric is the average wall-clock
execution time per task — the Figure 11 series.
"""

from repro.cp.task import CPTaskParams, spawn_synth_cp
from repro.sim.units import MILLISECONDS, SECONDS
from repro.workloads.background import start_dp_background


def run_synth_cp(deployment, concurrency, rounds=3, dp_utilization=0.30,
                 task_params=None, max_ns=20 * SECONDS):
    """Run ``rounds`` waves of ``concurrency`` tasks; returns timing stats."""
    env = deployment.env
    rng = deployment.rng.stream("synth-cp")
    params = task_params or CPTaskParams()
    if dp_utilization > 0:
        start_dp_background(deployment, utilization=dp_utilization)
    deployment.warmup()

    exec_times = []

    def _driver():
        for _ in range(rounds):
            threads = spawn_synth_cp(
                deployment.kernel, env, rng, concurrency,
                deployment.cp_affinity, params=params,
                recorder=exec_times.append,
            )
            yield env.all_of([thread.done for thread in threads])

    driver = env.process(_driver(), name="synth-cp-driver")
    # Stop as soon as the last wave completes (the DP background source is
    # perpetual, so running to a fixed horizon would waste wall-clock time).
    env.run(until=env.any_of([driver, env.timeout(max_ns)]))
    if not driver.triggered:
        raise RuntimeError(
            f"synth_cp did not finish within {max_ns} ns "
            f"({len(exec_times)}/{concurrency * rounds} tasks done)"
        )

    exec_times.sort()
    count = len(exec_times)
    return {
        "case": "synth_cp",
        "concurrency": concurrency,
        "tasks": count,
        "avg_exec_ms": sum(exec_times) / count / MILLISECONDS,
        "p50_exec_ms": exec_times[count // 2] / MILLISECONDS,
        "max_exec_ms": exec_times[-1] / MILLISECONDS,
    }
