"""Synthetic production traces for the motivation figures.

The paper's Figures 3 and 5 are measurements of Alibaba's production
fleet, which we cannot access; these generators synthesize traces with the
published summary statistics (documented substitution — see DESIGN.md):

* Figure 3 — per-second DP CPU utilization samples whose CDF has 99.68 %
  of mass below 32.5 % utilization;
* Figure 5 — a census of non-preemptible routine durations where 94.5 %
  of >1 ms routines fall in 1-5 ms and the maximum reaches 67 ms.
"""

import numpy as np

from repro.metrics import Cdf, Histogram
from repro.sim.units import MILLISECONDS


def generate_dp_utilization_trace(n_samples=100_000, seed=0):
    """Synthesize per-second DP utilization samples (fraction in [0, 1]).

    A Beta-distributed base load models normal polling-era utilization;
    a 0.32 % burst component models the peak episodes DP CPUs are
    provisioned for.  Calibrated so P(util <= 0.325) is approximately
    99.68 % (Figure 3).
    """
    rng = np.random.default_rng(seed)
    base = rng.beta(2.2, 18.0, size=n_samples) * 0.55
    bursts = rng.random(n_samples) < 0.0032
    burst_values = rng.uniform(0.325, 1.0, size=n_samples)
    samples = np.where(bursts, burst_values, np.minimum(base, 0.325 - 1e-6))
    return Cdf(samples.tolist())


def generate_nonpreemptible_census(n_routines=500_000, seed=0):
    """Synthesize a census of non-preemptible routine durations (ns).

    Returns (histogram over the Figure 5 buckets, list of long-tail
    durations > 1 ms).  The 1-5 ms band holds ~94.5 % of the long tail
    and durations cap at the production 67 ms maximum.
    """
    rng = np.random.default_rng(seed)
    # Long-tail share: the paper counts >456k routines over 1 ms among all
    # traced routines; model ~18% of routines exceeding 1 ms.
    is_long = rng.random(n_routines) < 0.18
    short = rng.uniform(0.02 * MILLISECONDS, 1 * MILLISECONDS, size=n_routines)
    in_band = rng.random(n_routines) < 0.945
    band = rng.uniform(1 * MILLISECONDS, 5 * MILLISECONDS, size=n_routines)
    tail = np.minimum(
        np.maximum(rng.lognormal(2.0, 0.9, size=n_routines) * MILLISECONDS,
                   5 * MILLISECONDS),
        67 * MILLISECONDS,
    )
    durations = np.where(is_long, np.where(in_band, band, tail), short)

    edges = [1, 5, 10, 20, 40, 67]
    histogram = Histogram([edge * MILLISECONDS for edge in edges],
                          name="nonpreemptible-durations")
    for value in durations:
        histogram.add(float(value))
    long_tail = durations[durations > 1 * MILLISECONDS]
    return histogram, long_tail.tolist()
