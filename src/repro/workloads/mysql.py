"""MySQL under sysbench: the paper's first real-world workload.

MySQL runs in the host VM; every query's request and response traverse the
SmartNIC data plane.  With 192 sysbench threads the offered rate saturates
the DP packet path, so query throughput tracks effective DP capacity —
which is how Tai Chi's 1.56 % average overhead (Figure 15) becomes
observable at all.
"""

from repro.hw.packet import IORequest, PacketKind
from repro.metrics import RateMeter
from repro.sim.units import MICROSECONDS
from repro.workloads.traffic import service_queue_ids

QUERY_PKT_SERVICE_NS = 1_600
QUERIES_PER_TRANSACTION = 10   # sysbench OLTP mix
HOST_QUERY_NS = 60 * MICROSECONDS


def run_mysql(deployment, duration_ns, n_threads=192, window_ns=None):
    """sysbench OLTP: returns avg/max query and transaction rates."""
    env = deployment.env
    queues = service_queue_ids(deployment)
    accelerator = deployment.board.accelerator
    rng = deployment.rng.stream("mysql")
    queries = RateMeter("queries")
    window_ns = window_ns or max(duration_ns // 10, 1)
    window_counts = []
    window_state = {"start": None, "count": 0}

    def _account_query():
        queries.add(env.now)
        if window_state["start"] is None:
            window_state["start"] = env.now
        window_state["count"] += 1
        if env.now - window_state["start"] >= window_ns:
            window_counts.append(
                window_state["count"] * 1e9 / (env.now - window_state["start"])
            )
            window_state["start"] = env.now
            window_state["count"] = 0

    def _client(index, deadline):
        queue_id = queues[index % len(queues)]
        while env.now < deadline:
            # One sysbench transaction: a batch of queries, each a request
            # packet to the VM plus a response packet out, with host-side
            # execution between them.
            for _ in range(QUERIES_PER_TRANSACTION):
                done = env.event()
                request = IORequest(PacketKind.NET_RX, 512, queue_id,
                                    service_ns=QUERY_PKT_SERVICE_NS, done=done)
                accelerator.submit(request)
                yield done
                host = int(rng.exponential(HOST_QUERY_NS))
                if host:
                    yield env.timeout(host)
                done = env.event()
                response = IORequest(PacketKind.NET_TX, 1024, queue_id,
                                     service_ns=QUERY_PKT_SERVICE_NS, done=done)
                accelerator.submit(response)
                yield done
                _account_query()

    deadline = env.now + duration_ns
    for index in range(n_threads):
        env.process(_client(index, deadline), name=f"sysbench-{index}")
    deployment.run(deadline)

    avg_query = queries.per_second(duration_ns)
    max_query = max(window_counts) if window_counts else avg_query
    return {
        "case": "mysql",
        "n_threads": n_threads,
        "avg_query_per_s": avg_query,
        "max_query_per_s": max_query,
        "avg_trans_per_s": avg_query / QUERIES_PER_TRANSACTION,
        "max_trans_per_s": max_query / QUERIES_PER_TRANSACTION,
    }
