"""Background load generators shared by experiments.

``start_dp_background`` keeps the data plane at a target *effective*
utilization (the Figure 11 experiments pin it at 30 %, the production p99).
Background packets are coarse batch units (one request models a burst of
frames) so second-scale simulations stay tractable without changing the
CPU-occupancy pattern Tai Chi's probes react to.

``start_cp_background`` reproduces the steady control-plane hum of a
production node: monitoring tasks plus a rolling stream of synthetic CP
jobs bound to the deployment's CP affinity.
"""

from repro.cp.monitor import MonitorTask
from repro.cp.task import CPTaskParams, synthetic_cp_body
from repro.hw.packet import IORequest, PacketKind
from repro.sim.units import MICROSECONDS, MILLISECONDS
from repro.workloads.traffic import service_queue_ids


def start_dp_background(deployment, utilization=0.30, duration_ns=None,
                        batch_service_ns=30 * MICROSECONDS, burstiness=0.5,
                        rng=None, queues=None, label="dp-bg",
                        tenant=None):
    """Drive every DP service at ``utilization`` effective CPU usage.

    Traffic alternates bursts and idle gaps (``burstiness`` controls the
    duty cycle peak-to-mean ratio) so idle windows exist for Tai Chi to
    harvest, as in production.  Returns the generator process.

    Multi-tenant boards pass ``queues`` (the tenant's own rx queues),
    a distinguishing ``label`` and the owning ``tenant`` id; the defaults
    reproduce the single-tenant behavior exactly.
    """
    env = deployment.env
    rng = rng or deployment.rng.stream("dp-background")
    if queues is None:
        queues = service_queue_ids(deployment)
    accelerator = deployment.board.accelerator
    # Per-queue packet rate to hit the utilization target.
    rate_pps = utilization / (batch_service_ns / 1e9)

    def _source(queue_id):
        deadline = None if duration_ns is None else env.now + duration_ns
        while deadline is None or env.now < deadline:
            # A burst window followed by an idle window; the mean rate over
            # both equals the target.
            burst_ns = int(rng.uniform(0.5, 1.5) * 2 * MILLISECONDS)
            duty = max(min(1.0 - burstiness, 1.0), 0.05)
            idle_ns = int(burst_ns * (1.0 - duty) / duty)
            burst_rate = rate_pps / duty
            burst_end = env.now + burst_ns
            while env.now < burst_end:
                gap = max(int(rng.exponential(1e9 / burst_rate)), 1)
                yield env.timeout(gap)
                request = IORequest(PacketKind.NET_TX, 1500, queue_id,
                                    service_ns=batch_service_ns,
                                    tenant=tenant)
                accelerator.submit(request)
            if idle_ns:
                yield env.timeout(idle_ns)

    return [
        env.process(_source(queue_id), name=f"{label}-{index}")
        for index, queue_id in enumerate(queues)
    ]


def start_cp_background(deployment, n_monitors=4, rolling_tasks=4,
                        task_params=None, rng=None, affinity=None,
                        name_prefix=None):
    """Start monitoring tasks plus a rolling synthetic CP job stream.

    Multi-tenant boards pass the tenant's ``affinity`` (its own vCPUs
    plus the shared CP pCPUs) and a per-tenant ``name_prefix``; defaults
    reproduce the single-tenant behavior exactly.
    """
    env = deployment.env
    rng = rng or deployment.rng.stream("cp-background")
    if affinity is None:
        affinity = deployment.cp_affinity
    prefix = "" if name_prefix is None else f"{name_prefix}-"
    monitors = [
        MonitorTask(deployment.board, f"{prefix}monitor-{index}", affinity)
        for index in range(n_monitors)
    ]
    params = task_params or CPTaskParams(total_ns=20 * MILLISECONDS)

    def _roller(slot):
        while True:
            done_event = env.event()

            def _finish(event=done_event):
                if not event.triggered:
                    event.succeed()

            body = synthetic_cp_body(rng, params=params, on_done=_finish)
            deployment.kernel.spawn(f"{prefix}cp-bg-{slot}", body,
                                    affinity=affinity)
            yield done_event
            yield env.timeout(int(rng.exponential(5 * MILLISECONDS)))

    rollers = [
        env.process(_roller(slot), name=f"{prefix}cp-bg-roller-{slot}")
        for slot in range(rolling_tasks)
    ]
    return monitors, rollers
