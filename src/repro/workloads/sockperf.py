"""sockperf-equivalent cases: TCP short connections and UDP latency."""

from repro.hw.packet import PacketKind
from repro.sim.units import MICROSECONDS
from repro.workloads.traffic import ClosedLoopClients, OpenLoopSource

SHORT_CONN_PKT_SERVICE_NS = 1_300
UDP_PING_SERVICE_NS = 1_500


def run_sockperf_tcp(deployment, duration_ns, n_connections=1024):
    """TCP short-connection stress: setup + request/response + teardown."""
    clients = ClosedLoopClients(
        deployment, n_clients=n_connections, packets_per_txn=3,
        size_bytes=256, service_ns=SHORT_CONN_PKT_SERVICE_NS,
        rng=deployment.rng.stream("sockperf-tcp"),
    )
    clients.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns)
    cps = clients.transactions.per_second(duration_ns)
    pps = clients.packets.per_second(duration_ns)
    return {
        "case": "sockperf_tcp",
        "n_connections": n_connections,
        "cps": cps,
        "avg_rx_pps": pps / 2,
        "avg_tx_pps": pps / 2,
    }


def run_sockperf_udp(deployment, duration_ns, rate_pps=20_000):
    """UDP latency probe: moderate-rate stream, avg/p99/p999 latencies."""
    source = OpenLoopSource(
        deployment, rate_pps, size_bytes=64, service_ns=UDP_PING_SERVICE_NS,
        kind=PacketKind.NET_TX, rng=deployment.rng.stream("sockperf-udp"),
    )
    source.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns + 500 * MICROSECONDS)
    latency = source.latency
    return {
        "case": "sockperf_udp",
        "samples": latency.count,
        "udp_avg_lat_ns": latency.mean,
        "udp_p99_lat_ns": latency.p99() if latency.count else 0,
        "udp_p999_lat_ns": latency.p999() if latency.count else 0,
    }
