"""Nginx under wrk: requests/s for HTTP and HTTPS at 10k connections.

Nginx serves from the host VM behind the SmartNIC data plane.  HTTP
keep-alive requests are two DP traversals (request in, response out);
HTTPS short connections add handshake packets, making them the
"short-connection scenario" where the paper observes Tai Chi's largest
(still ~1 %) overhead.
"""

from repro.hw.packet import IORequest, PacketKind
from repro.metrics import RateMeter
from repro.sim.units import MICROSECONDS
from repro.workloads.traffic import service_queue_ids

HTTP_PKT_SERVICE_NS = 1_400
HOST_SERVE_NS = 25 * MICROSECONDS
HTTPS_HANDSHAKE_PKTS = 3


def run_nginx(deployment, duration_ns, n_connections=10_000, protocol="http",
              max_clients=512):
    """wrk-style load; ``n_connections`` scaled down to ``max_clients``
    simulated client processes carrying the same aggregate concurrency."""
    env = deployment.env
    queues = service_queue_ids(deployment)
    accelerator = deployment.board.accelerator
    rng = deployment.rng.stream(f"nginx-{protocol}")
    requests = RateMeter("requests")
    n_clients = min(n_connections, max_clients)
    handshake = HTTPS_HANDSHAKE_PKTS if protocol == "https" else 0

    def _client(index, deadline):
        queue_id = queues[index % len(queues)]
        while env.now < deadline:
            for _ in range(handshake):
                done = env.event()
                accelerator.submit(IORequest(
                    PacketKind.NET_RX, 128, queue_id,
                    service_ns=HTTP_PKT_SERVICE_NS, done=done))
                yield done
            done = env.event()
            accelerator.submit(IORequest(
                PacketKind.NET_RX, 256, queue_id,
                service_ns=HTTP_PKT_SERVICE_NS, done=done))
            yield done
            host = int(rng.exponential(HOST_SERVE_NS))
            if host:
                yield env.timeout(host)
            done = env.event()
            accelerator.submit(IORequest(
                PacketKind.NET_TX, 4096, queue_id,
                service_ns=HTTP_PKT_SERVICE_NS, done=done))
            yield done
            requests.add(env.now)

    deadline = env.now + duration_ns
    for index in range(n_clients):
        env.process(_client(index, deadline), name=f"wrk-{index}")
    deployment.run(deadline)
    return {
        "case": f"nginx_{protocol}",
        "n_connections": n_connections,
        "requests_per_s": requests.per_second(duration_ns),
    }
