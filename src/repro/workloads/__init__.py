"""Benchmark workloads (Table 3) and production-trace synthesizers.

Each workload function takes a :class:`~repro.baselines.Deployment` plus a
duration and returns the paper's metrics for that benchmark:

* :mod:`~repro.workloads.netperf` — udp_stream, tcp_stream, tcp_rr, tcp_crr
* :mod:`~repro.workloads.sockperf` — tcp (CPS/pps) and udp (latencies)
* :mod:`~repro.workloads.ping` — RTT min/avg/max/mdev
* :mod:`~repro.workloads.fio` — 4 KB IOPS and bandwidth
* :mod:`~repro.workloads.mysql` — sysbench-driven query/transaction rates
* :mod:`~repro.workloads.nginx` — wrk-driven requests/s, HTTP and HTTPS
* :mod:`~repro.workloads.synth_cp` — the in-house CP stress benchmark
* :mod:`~repro.workloads.traces` — synthetic production traces calibrated
  to Figures 3 and 5
"""

from repro.workloads.background import start_cp_background, start_dp_background
from repro.workloads.fio import run_fio
from repro.workloads.mysql import run_mysql
from repro.workloads.netperf import run_tcp_crr, run_tcp_rr, run_tcp_stream, run_udp_stream
from repro.workloads.nginx import run_nginx
from repro.workloads.ping import run_ping
from repro.workloads.sockperf import run_sockperf_tcp, run_sockperf_udp
from repro.workloads.synth_cp import run_synth_cp
from repro.workloads.traces import (
    generate_dp_utilization_trace,
    generate_nonpreemptible_census,
)

__all__ = [
    "generate_dp_utilization_trace",
    "generate_nonpreemptible_census",
    "run_fio",
    "run_mysql",
    "run_nginx",
    "run_ping",
    "run_sockperf_tcp",
    "run_sockperf_udp",
    "run_synth_cp",
    "run_tcp_crr",
    "run_tcp_rr",
    "run_tcp_stream",
    "run_udp_stream",
    "start_cp_background",
    "start_dp_background",
]
