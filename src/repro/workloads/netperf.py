"""netperf-equivalent benchmark cases (Table 3).

* ``udp_stream`` — 64 concurrent connections, average RX bandwidth;
* ``tcp_stream`` — 64 connections, average RX/TX packets per second;
* ``tcp_rr`` — 1,024 connections of request/response round trips;
* ``tcp_crr`` — connect/request/response/close per transaction, the
  Section 6.3 virtualization-comparison workload (CPS, rx/tx pps).
"""

from repro.hw.packet import PacketKind
from repro.sim.units import MICROSECONDS
from repro.workloads.traffic import ClosedLoopClients, OpenLoopSource

# Per-packet DP software costs; large stream frames cost more than the
# small control segments of rr/crr transactions.
STREAM_PKT_SERVICE_NS = 1_900
RR_PKT_SERVICE_NS = 1_300
CRR_PKT_SERVICE_NS = 1_300


def run_udp_stream(deployment, duration_ns, n_connections=64, rate_pps=None):
    """UDP bulk receive: offered load slightly above DP capacity."""
    capacity_pps = _dp_capacity_pps(deployment, STREAM_PKT_SERVICE_NS)
    rate = rate_pps if rate_pps is not None else capacity_pps * 1.15
    source = OpenLoopSource(deployment, rate, size_bytes=1400,
                            service_ns=STREAM_PKT_SERVICE_NS,
                            kind=PacketKind.NET_RX,
                            rng=deployment.rng.stream("udp-stream"))
    source.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns + 200 * MICROSECONDS)
    return {
        "case": "udp_stream",
        "n_connections": n_connections,
        "offered_pps": rate,
        "avg_rx_bw_gbps": source.delivered.bytes_per_second(duration_ns) * 8 / 1e9,
        "avg_rx_pps": source.delivered.per_second(duration_ns),
        "avg_lat_ns": source.latency.mean,
    }


def run_tcp_stream(deployment, duration_ns, n_connections=64, rate_pps=None):
    """TCP bulk transfer: data segments out, ACK processing in."""
    capacity_pps = _dp_capacity_pps(deployment, STREAM_PKT_SERVICE_NS)
    rate = rate_pps if rate_pps is not None else capacity_pps * 1.15
    tx = OpenLoopSource(deployment, rate, size_bytes=1448,
                        service_ns=STREAM_PKT_SERVICE_NS,
                        kind=PacketKind.NET_TX,
                        rng=deployment.rng.stream("tcp-stream-tx"))
    # ACK stream: roughly one ACK per two data segments, cheap to process.
    rx = OpenLoopSource(deployment, rate / 2, size_bytes=64,
                        service_ns=600, kind=PacketKind.NET_RX,
                        rng=deployment.rng.stream("tcp-stream-rx"),
                        measure_latency=False)
    tx.start(duration_ns)
    rx.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns + 200 * MICROSECONDS)
    return {
        "case": "tcp_stream",
        "n_connections": n_connections,
        "avg_tx_pps": tx.delivered.per_second(duration_ns),
        "avg_rx_pps": rx.sent.per_second(duration_ns),
        "avg_lat_ns": tx.latency.mean,
    }


def run_tcp_rr(deployment, duration_ns, n_connections=1024):
    """Request/response over long-lived connections (2 packets per rr)."""
    clients = ClosedLoopClients(
        deployment, n_clients=n_connections, packets_per_txn=2,
        size_bytes=128, service_ns=RR_PKT_SERVICE_NS,
        rng=deployment.rng.stream("tcp-rr"),
    )
    clients.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns)
    rr_per_s = clients.transactions.per_second(duration_ns)
    return {
        "case": "tcp_rr",
        "n_connections": n_connections,
        "rr_per_s": rr_per_s,
        "avg_rx_pps": rr_per_s,
        "avg_tx_pps": rr_per_s,
        "txn_p99_ns": clients.txn_latency.p99() if clients.txn_latency.count else 0,
    }


def run_tcp_crr(deployment, duration_ns, n_connections=256):
    """Connect/request/response/close: 4 packets per transaction."""
    clients = ClosedLoopClients(
        deployment, n_clients=n_connections, packets_per_txn=4,
        size_bytes=128, service_ns=CRR_PKT_SERVICE_NS,
        rng=deployment.rng.stream("tcp-crr"),
    )
    clients.start(duration_ns)
    deployment.run(deployment.env.now + duration_ns)
    cps = clients.transactions.per_second(duration_ns)
    pps = clients.packets.per_second(duration_ns)
    return {
        "case": "tcp_crr",
        "n_connections": n_connections,
        "cps": cps,
        "avg_rx_pps": pps / 2,
        "avg_tx_pps": pps / 2,
        "txn_mean_ns": clients.txn_latency.mean,
    }


def _dp_capacity_pps(deployment, service_ns):
    """Aggregate DP packet capacity given the per-packet software cost."""
    n_cpus = len(deployment.services)
    scale = deployment.dp_params.work_scale
    return n_cpus * 1e9 / (service_ns * scale)
