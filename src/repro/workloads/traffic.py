"""Shared traffic-generation machinery for the benchmark workloads."""

from repro.hw.packet import IORequest, PacketKind
from repro.metrics import LatencyRecorder, RateMeter


def service_queue_ids(deployment):
    """One representative queue id per DP service (round-robin targets)."""
    return [service.queue_ids[0] for service in deployment.services]


class OpenLoopSource:
    """Sends packets at a fixed aggregate rate, spread across queues.

    Suitable for *_stream benchmarks: the offered load is independent of
    completions, so saturation shows up as queueing/drops-in-latency rather
    than reduced offered rate.
    """

    def __init__(self, deployment, rate_pps, size_bytes, service_ns,
                 kind=PacketKind.NET_TX, rng=None, measure_latency=True):
        self.deployment = deployment
        self.env = deployment.env
        self.rate_pps = float(rate_pps)
        self.size_bytes = size_bytes
        self.service_ns = service_ns
        self.kind = kind
        self.rng = rng or deployment.rng.stream("open-loop")
        self.measure_latency = measure_latency
        self.latency = LatencyRecorder(name="open-loop-latency")
        self.sent = RateMeter("sent")
        self.delivered = RateMeter("delivered")
        self._queues = service_queue_ids(deployment)
        self._proc = None

    def start(self, duration_ns):
        self._proc = self.env.process(self._run(duration_ns), name="open-loop")
        return self._proc

    def _run(self, duration_ns):
        env = self.env
        accelerator = self.deployment.board.accelerator
        deadline = env.now + duration_ns
        index = 0
        while env.now < deadline:
            gap = self.rng.exponential(1e9 / self.rate_pps)
            yield env.timeout(max(int(gap), 1))
            queue_id = self._queues[index % len(self._queues)]
            index += 1
            request = IORequest(self.kind, self.size_bytes, queue_id,
                                service_ns=self.service_ns)
            if self.measure_latency:
                request.done = env.event()
                request.done.callbacks.append(self._on_done)
            self.sent.add(env.now, self.size_bytes)
            accelerator.submit(request)

    def _on_done(self, event):
        request = event.value
        self.delivered.add(self.env.now, request.size_bytes)
        if request.total_latency_ns is not None:
            self.latency.record(request.total_latency_ns)


class ClosedLoopClients:
    """N clients each running transactions back-to-back (netperf rr style).

    A transaction is ``packets_per_txn`` sequential request/complete
    round-trips plus an optional think time.  Throughput is then bounded by
    whichever saturates first: client concurrency or DP CPU capacity.
    """

    def __init__(self, deployment, n_clients, packets_per_txn, size_bytes,
                 service_ns, kind=PacketKind.NET_TX, think_ns=0, rng=None):
        self.deployment = deployment
        self.env = deployment.env
        self.n_clients = int(n_clients)
        self.packets_per_txn = int(packets_per_txn)
        self.size_bytes = size_bytes
        self.service_ns = service_ns
        self.kind = kind
        self.think_ns = int(think_ns)
        self.rng = rng or deployment.rng.stream("closed-loop")
        self.transactions = RateMeter("transactions")
        self.packets = RateMeter("packets")
        self.txn_latency = LatencyRecorder(name="txn-latency")
        self._queues = service_queue_ids(deployment)
        self._procs = []

    def start(self, duration_ns):
        deadline = self.env.now + duration_ns
        for client in range(self.n_clients):
            proc = self.env.process(
                self._client(client, deadline), name=f"client-{client}"
            )
            self._procs.append(proc)
        return self._procs

    def _client(self, client_index, deadline):
        env = self.env
        accelerator = self.deployment.board.accelerator
        queue_id = self._queues[client_index % len(self._queues)]
        while env.now < deadline:
            txn_start = env.now
            for _ in range(self.packets_per_txn):
                done = env.event()
                request = IORequest(self.kind, self.size_bytes, queue_id,
                                    service_ns=self.service_ns, done=done)
                accelerator.submit(request)
                yield done
                self.packets.add(env.now, self.size_bytes)
            self.transactions.add(env.now)
            self.txn_latency.record(env.now - txn_start)
            if self.think_ns:
                think = int(self.rng.exponential(self.think_ns))
                if think:
                    yield env.timeout(think)


class StorageClients:
    """fio-style jobs keeping ``iodepth`` block requests in flight each."""

    def __init__(self, deployment, n_jobs, iodepth, block_bytes, service_ns,
                 rng=None):
        self.deployment = deployment
        self.env = deployment.env
        self.n_jobs = int(n_jobs)
        self.iodepth = int(iodepth)
        self.block_bytes = int(block_bytes)
        self.service_ns = service_ns
        self.rng = rng or deployment.rng.stream("fio")
        self.completed = RateMeter("ios")
        self.io_latency = LatencyRecorder(name="io-latency")
        self._queues = service_queue_ids(deployment)

    def start(self, duration_ns):
        deadline = self.env.now + duration_ns
        procs = []
        for job in range(self.n_jobs):
            for slot in range(self.iodepth):
                procs.append(self.env.process(
                    self._slot(job, deadline), name=f"fio-{job}-{slot}"
                ))
        return procs

    def _slot(self, job_index, deadline):
        env = self.env
        accelerator = self.deployment.board.accelerator
        queue_id = self._queues[job_index % len(self._queues)]
        while env.now < deadline:
            done = env.event()
            request = IORequest(PacketKind.STORAGE_SUBMIT, self.block_bytes,
                                queue_id, service_ns=self.service_ns, done=done)
            submit_at = env.now
            accelerator.submit(request)
            yield done
            self.completed.add(env.now, self.block_bytes)
            self.io_latency.record(env.now - submit_at)
