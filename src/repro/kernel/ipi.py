"""Inter-processor interrupts with an interceptable send path.

``IPIController.send`` mirrors the kernel's ``x2apic_send_IPI``: Tai Chi's
unified IPI orchestrator installs a *send hook* that sees every IPI and may
take over routing (e.g. injecting into a running vCPU, or waking a sleeping
one) — exactly the interception point described in Section 5.
"""

import enum


class IPIVector(enum.Enum):
    RESCHED = "resched"
    CALL_FUNCTION = "call_function"
    TIMER = "timer"
    INIT = "init"            # CPU hotplug: reset target CPU
    STARTUP = "startup"      # CPU hotplug: begin boot (SIPI)
    TAICHI_PREEMPT = "taichi_preempt"  # hardware workload probe IRQ


class IPIController:
    """Routes IPIs between CPUs with a small delivery latency."""

    def __init__(self, kernel, latency_ns=500):
        self.kernel = kernel
        self.latency_ns = int(latency_ns)
        self._send_hook = None
        self._fault_hook = None
        self._drop_listeners = []
        self._handlers = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.hooked_count = 0
        self.dropped_offline = 0
        self.dropped_fault = 0
        self.delayed_fault = 0
        self._m_dropped = kernel.env.metrics.counter("kernel.ipi.dropped")

    def set_send_hook(self, hook):
        """Install ``hook(src_cpu, dst_cpu, vector, payload) -> bool``.

        Returning True means the hook handled (or rerouted) the IPI and the
        default physical delivery is skipped.  This is the analogue of
        intercepting ``x2apic_send_IPI``.
        """
        self._send_hook = hook

    def clear_send_hook(self):
        self._send_hook = None

    def set_fault_hook(self, hook):
        """Install ``hook(dst_cpu, vector, payload)`` on the delivery path.

        The hook models a lossy interconnect: return ``None`` for normal
        delivery, ``("drop",)`` to lose the IPI, or ``("delay", extra_ns)``
        to stretch its latency.  Unlike the send hook this sees *every*
        delivery — routed, posted, boot and device-IRQ paths included.
        """
        self._fault_hook = hook

    def clear_fault_hook(self):
        self._fault_hook = None

    def add_drop_listener(self, listener):
        """``listener(dst_cpu, vector, payload, latency_ns)`` on fault drops.

        Offline-destination drops are *not* reported: those IPIs reached
        a CPU that is legitimately down, and retrying them would invoke
        handlers on a CPU the kernel believes has no executor.
        """
        self._drop_listeners.append(listener)

    def register_handler(self, vector, handler):
        """Register ``handler(cpu, payload)`` invoked on delivery."""
        self._handlers[vector] = handler

    def send(self, src_cpu, dst_cpu, vector, payload=None):
        """Send an IPI; honors the installed hook, else delivers physically."""
        self.sent_count += 1
        routed = False
        if self._send_hook is not None:
            routed = bool(self._send_hook(src_cpu, dst_cpu, vector, payload))
            if routed:
                self.hooked_count += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            src_id = getattr(src_cpu, "cpu_id", "-")
            tracer.record(self.kernel.env.now, src_id, "ipi_send",
                          dst=dst_cpu.cpu_id, vector=vector.value,
                          routed=routed)
        if not routed:
            self.deliver(dst_cpu, vector, payload, latency_ns=self.latency_ns)

    def deliver(self, dst_cpu, vector, payload=None, latency_ns=None,
                notify_drop=True):
        """Deliver to ``dst_cpu`` after ``latency_ns`` (bypasses the hook).

        Also used for device IRQs (the hardware workload probe's preempt
        interrupt arrives through this path).  Returns False when a fault
        hook dropped the IPI at the source, True when it is in flight —
        though it may still be discarded at fire time if the destination
        went offline in the meantime.  ``notify_drop=False`` keeps a
        fault drop out of the drop listeners (used by retry loops to
        avoid respawning themselves).
        """
        delay = self.latency_ns if latency_ns is None else int(latency_ns)
        env = self.kernel.env
        tracer = self.kernel.tracer

        if self._fault_hook is not None:
            verdict = self._fault_hook(dst_cpu, vector, payload)
            if verdict is not None:
                action = verdict[0]
                if action == "drop":
                    self.dropped_fault += 1
                    self._m_dropped.inc()
                    if tracer.enabled:
                        tracer.record(env.now, dst_cpu.cpu_id,
                                      "fault.ipi_drop", dst=dst_cpu.cpu_id,
                                      vector=vector.value)
                    if notify_drop:
                        for listener in self._drop_listeners:
                            listener(dst_cpu, vector, payload, delay)
                    return False
                if action == "delay":
                    extra = int(verdict[1])
                    self.delayed_fault += 1
                    if tracer.enabled:
                        tracer.record(env.now, dst_cpu.cpu_id,
                                      "fault.ipi_delay", dst=dst_cpu.cpu_id,
                                      vector=vector.value, extra_ns=extra)
                    delay += extra

        def _fire(_event):
            tracer = self.kernel.tracer
            if (not dst_cpu.online
                    and vector not in (IPIVector.INIT, IPIVector.STARTUP)):
                # An offline CPU has no executor: invoking handlers here
                # would run code on a CPU the kernel believes is down.
                self.dropped_offline += 1
                self._m_dropped.inc()
                if tracer.enabled:
                    tracer.record(env.now, dst_cpu.cpu_id, "ipi.dropped",
                                  vector=vector.value, reason="offline")
                return
            self.delivered_count += 1
            if tracer.enabled:
                tracer.record(env.now, dst_cpu.cpu_id, "ipi_deliver",
                              vector=vector.value)
            self._invoke(dst_cpu, vector, payload)

        env.timeout(delay).callbacks.append(_fire)
        return True

    def _invoke(self, dst_cpu, vector, payload):
        handler = self._handlers.get(vector)
        if handler is not None:
            handler(dst_cpu, payload)
            return
        # Default behaviours for standard vectors.
        if vector is IPIVector.RESCHED:
            dst_cpu.kick()
        elif vector in (IPIVector.INIT, IPIVector.STARTUP):
            dst_cpu.receive_boot_ipi(vector)
        elif vector is IPIVector.CALL_FUNCTION:
            if callable(payload):
                payload(dst_cpu)
            dst_cpu.kick()
