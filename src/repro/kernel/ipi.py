"""Inter-processor interrupts with an interceptable send path.

``IPIController.send`` mirrors the kernel's ``x2apic_send_IPI``: Tai Chi's
unified IPI orchestrator installs a *send hook* that sees every IPI and may
take over routing (e.g. injecting into a running vCPU, or waking a sleeping
one) — exactly the interception point described in Section 5.
"""

import enum


class IPIVector(enum.Enum):
    RESCHED = "resched"
    CALL_FUNCTION = "call_function"
    TIMER = "timer"
    INIT = "init"            # CPU hotplug: reset target CPU
    STARTUP = "startup"      # CPU hotplug: begin boot (SIPI)
    TAICHI_PREEMPT = "taichi_preempt"  # hardware workload probe IRQ


class IPIController:
    """Routes IPIs between CPUs with a small delivery latency."""

    def __init__(self, kernel, latency_ns=500):
        self.kernel = kernel
        self.latency_ns = int(latency_ns)
        self._send_hook = None
        self._handlers = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.hooked_count = 0

    def set_send_hook(self, hook):
        """Install ``hook(src_cpu, dst_cpu, vector, payload) -> bool``.

        Returning True means the hook handled (or rerouted) the IPI and the
        default physical delivery is skipped.  This is the analogue of
        intercepting ``x2apic_send_IPI``.
        """
        self._send_hook = hook

    def clear_send_hook(self):
        self._send_hook = None

    def register_handler(self, vector, handler):
        """Register ``handler(cpu, payload)`` invoked on delivery."""
        self._handlers[vector] = handler

    def send(self, src_cpu, dst_cpu, vector, payload=None):
        """Send an IPI; honors the installed hook, else delivers physically."""
        self.sent_count += 1
        routed = False
        if self._send_hook is not None:
            routed = bool(self._send_hook(src_cpu, dst_cpu, vector, payload))
            if routed:
                self.hooked_count += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            src_id = getattr(src_cpu, "cpu_id", "-")
            tracer.record(self.kernel.env.now, src_id, "ipi_send",
                          dst=dst_cpu.cpu_id, vector=vector.value,
                          routed=routed)
        if not routed:
            self.deliver(dst_cpu, vector, payload, latency_ns=self.latency_ns)

    def deliver(self, dst_cpu, vector, payload=None, latency_ns=None):
        """Deliver to ``dst_cpu`` after ``latency_ns`` (bypasses the hook).

        Also used for device IRQs (the hardware workload probe's preempt
        interrupt arrives through this path).
        """
        delay = self.latency_ns if latency_ns is None else int(latency_ns)
        env = self.kernel.env

        def _fire(_event):
            self.delivered_count += 1
            tracer = self.kernel.tracer
            if tracer.enabled:
                tracer.record(env.now, dst_cpu.cpu_id, "ipi_deliver",
                              vector=vector.value)
            self._invoke(dst_cpu, vector, payload)

        env.timeout(delay).callbacks.append(_fire)

    def _invoke(self, dst_cpu, vector, payload):
        handler = self._handlers.get(vector)
        if handler is not None:
            handler(dst_cpu, payload)
            return
        # Default behaviours for standard vectors.
        if vector is IPIVector.RESCHED:
            dst_cpu.kick()
        elif vector in (IPIVector.INIT, IPIVector.STARTUP):
            dst_cpu.receive_boot_ipi(vector)
        elif vector is IPIVector.CALL_FUNCTION:
            if callable(payload):
                payload(dst_cpu)
            dst_cpu.kick()
