"""Instruction objects yielded by thread bodies.

A thread body is a generator.  Each ``yield`` hands the executor one of the
instruction objects below; the executor advances simulated time (or blocks
the thread) accordingly and resumes the body with the instruction's result.

Example body — a control-plane task doing user-space work followed by a
syscall that takes a driver spinlock for 2 ms (the Figure 4 pattern)::

    def body(thread):
        yield Compute(200 * MICROSECONDS)          # preemptible user code
        yield KernelSection(2 * MILLISECONDS)      # non-preemptible routine
        yield Sleep(1 * MILLISECONDS)
"""


class Instruction:
    """Base class; purely a marker with a duration-bearing repr."""

    __slots__ = ()

    def __repr__(self):
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({fields})"


class Compute(Instruction):
    """Burn ``ns`` nanoseconds of CPU in a *preemptible* context."""

    __slots__ = ("ns",)

    def __init__(self, ns):
        if ns < 0:
            raise ValueError(f"negative compute duration {ns}")
        self.ns = int(ns)


class KernelSection(Instruction):
    """Burn ``ns`` nanoseconds with kernel preemption disabled.

    This models the ms-scale non-preemptible routines of Section 3.2
    (spinlock-protected driver paths, interrupt-disabled regions, ...).  The
    kernel scheduler cannot take the CPU away until the section completes —
    but a VM-exit *can* interrupt it, which is Tai Chi's escape hatch.
    """

    __slots__ = ("ns", "reason")

    def __init__(self, ns, reason="kernel"):
        if ns < 0:
            raise ValueError(f"negative section duration {ns}")
        self.ns = int(ns)
        self.reason = reason


class Syscall(Instruction):
    """A syscall: entry/exit overhead around a non-preemptible body.

    ``body_ns`` runs non-preemptibly (like :class:`KernelSection`);
    the executor charges ``entry_ns`` + ``body_ns`` + ``exit_ns`` in total.
    """

    __slots__ = ("body_ns", "entry_ns", "exit_ns", "name")

    def __init__(self, body_ns, name="syscall", entry_ns=300, exit_ns=300):
        self.body_ns = int(body_ns)
        self.entry_ns = int(entry_ns)
        self.exit_ns = int(exit_ns)
        self.name = name


class Sleep(Instruction):
    """Block the thread for ``ns`` nanoseconds (releases the CPU)."""

    __slots__ = ("ns",)

    def __init__(self, ns):
        if ns < 0:
            raise ValueError(f"negative sleep duration {ns}")
        self.ns = int(ns)


class WaitEvent(Instruction):
    """Block until ``event`` fires; the body receives the event's value."""

    __slots__ = ("event",)

    def __init__(self, event):
        self.event = event


class LockAcquire(Instruction):
    """Acquire a :class:`~repro.kernel.spinlock.Spinlock`.

    Spinning burns CPU time with preemption disabled, exactly like the real
    thing; once acquired, preemption stays disabled until the matching
    :class:`LockRelease`.
    """

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock


class LockRelease(Instruction):
    """Release a previously acquired spinlock."""

    __slots__ = ("lock",)

    def __init__(self, lock):
        self.lock = lock


class YieldCPU(Instruction):
    """Voluntarily let the scheduler pick another thread (sched_yield)."""

    __slots__ = ()


class Exit(Instruction):
    """Terminate the thread immediately with ``value``."""

    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = value
