"""Per-CPU run queues with a realtime class above a CFS-like fair class."""

import enum
from collections import deque


class SchedClass(enum.Enum):
    """Scheduling classes, highest priority first."""

    REALTIME = 0
    FAIR = 1


class RunQueue:
    """Holds READY threads for one CPU.

    Realtime threads are FIFO and always beat fair threads.  Fair threads
    are picked by minimum virtual runtime, weighted by ``nice_weight``
    (a lightweight CFS).
    """

    __slots__ = ("cpu_id", "_rt", "_fair", "min_vruntime")

    def __init__(self, cpu_id):
        self.cpu_id = cpu_id
        self._rt = deque()
        self._fair = []
        self.min_vruntime = 0.0

    def __len__(self):
        return len(self._rt) + len(self._fair)

    @property
    def is_empty(self):
        return not self._rt and not self._fair

    @property
    def has_realtime(self):
        return bool(self._rt)

    def enqueue(self, thread):
        """Add a READY thread; new fair arrivals start at min_vruntime."""
        if thread.sched_class is SchedClass.REALTIME:
            self._rt.append(thread)
        else:
            # Place newly woken threads at the queue's floor so they neither
            # starve nor monopolize the CPU.
            if thread.vruntime < self.min_vruntime:
                thread.vruntime = self.min_vruntime
            self._fair.append(thread)

    def dequeue(self, thread):
        """Remove a specific thread (e.g. migrated away); returns success."""
        if thread in self._rt:
            self._rt.remove(thread)
            return True
        if thread in self._fair:
            self._fair.remove(thread)
            return True
        return False

    def pick_next(self):
        """Pop the best candidate, or ``None`` if empty."""
        if self._rt:
            return self._rt.popleft()
        fair = self._fair
        if fair:
            # Single-pass scan; ties broken by lowest tid (same selection as
            # min() over (vruntime, tid) tuples, without building keys).
            best_i = 0
            best = fair[0]
            for i in range(1, len(fair)):
                t = fair[i]
                if (t.vruntime < best.vruntime
                        or (t.vruntime == best.vruntime and t.tid < best.tid)):
                    best = t
                    best_i = i
            del fair[best_i]
            if best.vruntime > self.min_vruntime:
                self.min_vruntime = best.vruntime
            return best
        return None

    def peek_class(self):
        """Scheduling class of the best waiting thread, or ``None``."""
        if self._rt:
            return SchedClass.REALTIME
        if self._fair:
            return SchedClass.FAIR
        return None

    def charge(self, thread, ran_ns):
        """Account ``ran_ns`` of execution to ``thread``'s vruntime."""
        thread.total_runtime_ns += ran_ns
        if thread.sched_class is SchedClass.FAIR:
            thread.vruntime += ran_ns / max(thread.nice_weight, 1e-9)
            self.min_vruntime = max(self.min_vruntime, 0.0)

    def threads(self):
        """Snapshot list of queued threads (realtime first)."""
        return list(self._rt) + sorted(self._fair, key=lambda t: (t.vruntime, t.tid))

    def __repr__(self):
        return f"<RunQueue cpu={self.cpu_id} rt={len(self._rt)} fair={len(self._fair)}>"
