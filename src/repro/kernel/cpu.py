"""CPU executors: interpret thread instruction streams with Linux-like rules.

One :class:`CPU` owns a run queue and an executor process.  The executor
picks threads, charges context-switch costs, advances simulated time for
their instructions, refuses kernel preemption inside non-preemptible
sections, and runs pending softirqs at instruction boundaries.

The executor's time advancement is factored through two primitives —
:meth:`CPU._advance` and :meth:`CPU._await` — that catch interrupts.  A
*kick* (reschedule request) sets ``need_resched`` and may end a preemptible
chunk early; a *revocation* (only meaningful for
:class:`~repro.virt.vcpu.VirtualCPU`) freezes the executor mid-instruction
until its backing physical CPU is re-granted.  That split is exactly the
paper's distinction between kernel preemption (blocked by non-preemptible
routines) and VM-exit (always possible).
"""

import enum

from repro.sim.errors import Interrupt
from repro.kernel.instructions import (
    Compute,
    Exit,
    KernelSection,
    LockAcquire,
    LockRelease,
    Sleep,
    Syscall,
    WaitEvent,
    YieldCPU,
)
from repro.kernel.runqueue import RunQueue, SchedClass
from repro.kernel.thread import ThreadState


class CpuState(enum.Enum):
    OFFLINE = "offline"
    BOOTING = "booting"
    IDLE = "idle"
    RUNNING = "running"


class _KickCause:
    """Interrupt cause for reschedule kicks."""

    def __repr__(self):
        return "<kick>"


KICK = _KickCause()

# Outcomes of running one instruction / one thread stint.
_DONE = "done"
_PREEMPTED = "preempted"
_BLOCKED = "blocked"
_EXITED = "exited"


class CPU:
    """A (physical) CPU of the SmartNIC OS."""

    is_virtual = False
    # Multiplier applied to instruction durations executed here; virtual
    # CPUs carrying guest-mode workloads (type-1 baseline) set this > 1 to
    # model nested-page-table and exit overheads.
    work_tax = 1.0

    def __init__(self, kernel, cpu_id, online=True):
        self.kernel = kernel
        self.env = kernel.env
        self.cpu_id = cpu_id
        self.runqueue = RunQueue(cpu_id)
        self.state = CpuState.OFFLINE
        self.current = None
        self.need_resched = False
        self.preempt_depth = 0

        # Statistics.
        self.busy_ns = 0
        self.idle_ns = 0
        self.context_switches = 0
        self.softirq_runs = 0
        self.nonpreemptible_ns = 0

        # Executor plumbing.
        self._proc = None
        self._interrupt_ok = False
        self._kick_pending = False
        self._idle_wakeup = None
        self._slice_end = None
        self._in_softirq = False
        self._offline_requested = False

        # Hook invoked whenever this CPU gains runnable work while it cannot
        # immediately run it (used by the Tai Chi vCPU scheduler).
        self.work_callback = None
        # Optional ``hook(thread, instruction)`` observing every instruction
        # issued on this CPU (Section 8's instruction-level auditing).
        self.instruction_hook = None

        if online:
            self.set_online()

    # -- Lifecycle -------------------------------------------------------------

    @property
    def online(self):
        return self.state not in (CpuState.OFFLINE, CpuState.BOOTING)

    @property
    def offline_pending(self):
        """True between :meth:`request_offline` and the executor parking."""
        return self._offline_requested

    def set_online(self):
        """Bring the CPU online and start its executor."""
        if self.online:
            return
        self.state = CpuState.IDLE
        self._offline_requested = False
        self._proc = self.env.process(self._main(), name=f"cpu{self.cpu_id}")
        self.kernel.on_cpu_online(self)

    def request_offline(self):
        """Ask the executor to park at its next scheduling boundary.

        Graceful hotplug removal: the running thread finishes its current
        non-preemptible stretch, then the executor migrates stranded work
        (via :meth:`Kernel.on_cpu_offline`) and returns.  The CPU can be
        brought back with INIT/STARTUP boot IPIs or :meth:`set_online`.
        """
        if not self.online or self._offline_requested:
            return False
        self._offline_requested = True
        self.kick()
        return True

    def _go_offline(self):
        self._offline_requested = False
        self.state = CpuState.OFFLINE
        self.current = None
        self._proc = None
        self.need_resched = False
        self.kernel.on_cpu_offline(self)

    def receive_boot_ipi(self, vector):
        """Handle INIT/STARTUP hotplug IPIs for an offline CPU."""
        from repro.kernel.ipi import IPIVector

        # INIT is idempotent while booting: a CPU stuck in BOOTING because
        # its STARTUP was lost can be re-INITed by a later boot attempt.
        if vector is IPIVector.INIT and self.state in (
                CpuState.OFFLINE, CpuState.BOOTING):
            self.state = CpuState.BOOTING
        elif vector is IPIVector.STARTUP and self.state is CpuState.BOOTING:
            delay = self.kernel.params.cpu_boot_ns

            def _complete(_event):
                self.state = CpuState.OFFLINE  # let set_online flip it
                self.set_online()

            self.env.timeout(delay).callbacks.append(_complete)

    # -- External control --------------------------------------------------------

    def kick(self):
        """Request a reschedule: wake an idle executor or interrupt a chunk."""
        self.need_resched = True
        if not self.online or self._proc is None:
            return
        if self._idle_wakeup is not None and not self._idle_wakeup.triggered:
            self._idle_wakeup.succeed()
        elif (
            self._interrupt_ok
            and not self._kick_pending
            and self.env.active_process is not self._proc
        ):
            self._kick_pending = True
            self._proc.interrupt(KICK)
        if self.work_callback is not None and not self.runqueue.is_empty:
            self.work_callback(self)

    def enqueue(self, thread):
        """Place a READY thread on this CPU's run queue and kick."""
        thread.state = ThreadState.READY
        thread.wait_since_ns = self.env.now
        self.runqueue.enqueue(thread)
        self.kick()

    def load(self):
        """Crude load metric: queue length plus the running thread."""
        return len(self.runqueue) + (1 if self.current is not None else 0)

    def placement_load(self):
        """Load as seen by wake placement (vCPUs add a backing penalty)."""
        return self.load()

    # -- Extension points (overridden by VirtualCPU) -----------------------------

    def _gate(self):
        """Wait until the CPU may execute (vCPUs wait for a backing grant)."""
        return
        yield  # pragma: no cover - makes this a generator function

    def _handle_cause(self, cause):
        """React to a non-kick interrupt cause; vCPUs handle revocation."""
        return
        yield  # pragma: no cover

    def on_idle_enter(self):
        """Called when the executor finds no runnable thread."""

    # -- Time primitives ----------------------------------------------------------

    def _advance(self, ns, preempt_ok):
        """Consume ``ns`` of executor time; returns nanoseconds consumed.

        With ``preempt_ok`` the advance ends early (returning the partial
        amount) when a kick arrives or the running thread's slice expires.
        """
        remaining = int(ns)
        consumed = 0
        while remaining > 0:
            chunk = remaining
            if preempt_ok and self._slice_end is not None:
                chunk = min(chunk, max(self._slice_end - self.env.now, 0))
                if chunk == 0:
                    # Slice already expired: decide before burning more time.
                    if self._slice_expired_should_yield():
                        self.need_resched = True
                        return consumed
                    self._extend_slice()
                    continue
            start = self.env.now
            self._interrupt_ok = True
            try:
                yield self.env.timeout(chunk)
                self._interrupt_ok = False
                elapsed = chunk
            except Interrupt as interrupt:
                self._interrupt_ok = False
                elapsed = self.env.now - start
                remaining -= elapsed
                consumed += elapsed
                self.busy_ns += elapsed
                if interrupt.cause is KICK:
                    self._kick_pending = False
                    yield from self._softirqs_inline()
                    if preempt_ok and self._should_preempt():
                        return consumed
                else:
                    yield from self._handle_cause(interrupt.cause)
                continue
            remaining -= elapsed
            consumed += elapsed
            self.busy_ns += elapsed
            if preempt_ok and remaining > 0 and self.need_resched and self._should_preempt():
                return consumed
        return consumed

    def _await(self, event, busy):
        """Wait for ``event``, surviving kicks (and revocations on vCPUs)."""
        start = self.env.now
        while True:
            self._interrupt_ok = True
            try:
                value = yield event
                self._interrupt_ok = False
                break
            except Interrupt as interrupt:
                self._interrupt_ok = False
                if interrupt.cause is KICK:
                    self._kick_pending = False
                    yield from self._softirqs_inline()
                else:
                    yield from self._handle_cause(interrupt.cause)
                if event.processed:
                    value = event.value
                    break
        elapsed = self.env.now - start
        if busy:
            self.busy_ns += elapsed
        return value

    def await_event(self, event, busy=True):
        """Public wrapper for softirq handlers running on this executor."""
        return self._await(event, busy)

    def consume(self, ns):
        """Public wrapper: burn ``ns`` non-preemptibly (softirq handlers)."""
        return self._advance(ns, preempt_ok=False)

    # -- Scheduler loop ------------------------------------------------------------

    def _main(self):
        while True:
            if self._offline_requested:
                self._go_offline()
                return
            yield from self._gate()
            if self.kernel.softirq.pending(self):
                yield from self._run_softirqs()
                continue
            thread = self.runqueue.pick_next()
            if thread is None:
                yield from self._idle_once()
                continue
            self.need_resched = False
            yield from self._dispatch(thread)

    def _idle_once(self):
        self.state = CpuState.IDLE
        self.on_idle_enter()
        if not self.runqueue.is_empty or self.kernel.softirq.pending(self):
            return
        if self.kernel.try_fill_idle(self):
            return
        if not self.runqueue.is_empty or self.kernel.softirq.pending(self):
            return
        wakeup = self.env.event()
        self._idle_wakeup = wakeup
        start = self.env.now
        yield from self._await(wakeup, busy=False)
        self._idle_wakeup = None
        self.idle_ns += self.env.now - start

    def _run_softirqs(self):
        self.softirq_runs += 1
        self._in_softirq = True
        try:
            yield from self.kernel.softirq.run_pending(self)
        finally:
            self._in_softirq = False

    def _softirqs_inline(self):
        """Run pending softirqs from inside a wait (irq-exit semantics).

        Softirqs fire promptly even while the current thread spins on a
        lock or burns a long compute segment — interrupts stay enabled in
        those states on real kernels.  Nested softirq execution is refused,
        as in Linux.
        """
        if not self._in_softirq and self.kernel.softirq.pending(self):
            yield from self._run_softirqs()

    def _dispatch(self, thread):
        """Run ``thread`` until it blocks, exits, or is preempted."""
        params = self.kernel.params
        self.context_switches += 1
        # The thread is owed to this CPU from the moment it is popped —
        # `current` must be visible before any wait, or a vCPU revoked
        # during the context-switch charge would look idle and strand it.
        self.current = thread
        thread.cpu = self
        yield from self._advance(params.context_switch_ns, preempt_ok=False)

        self.state = CpuState.RUNNING
        thread.state = ThreadState.RUNNING
        thread.last_cpu = self.cpu_id
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(self.env.now, self.cpu_id, "sched_in",
                          thread=thread.name, rq=len(self.runqueue))
        if thread.wait_since_ns is not None:
            self.kernel.record_sched_latency(self.env.now - thread.wait_since_ns)
            thread.wait_since_ns = None
        self._slice_end = (
            self.env.now + params.sched_slice_ns
            if thread.sched_class is SchedClass.FAIR
            else None
        )
        stint_start = self.env.now

        outcome = _DONE
        while outcome is _DONE:
            outcome = yield from self._run_one_instruction(thread)
            if self.kernel.softirq.pending(self):
                yield from self._run_softirqs()
            if outcome is _DONE and self.need_resched and self._should_preempt():
                outcome = _PREEMPTED

        ran_ns = self.env.now - stint_start
        self.runqueue.charge(thread, ran_ns)
        if tracer.enabled:
            tracer.record(self.env.now, self.cpu_id, "sched_out",
                          thread=thread.name, outcome=outcome,
                          ran_ns=ran_ns)
            tracer.record(self.env.now, self.cpu_id, "rq_depth",
                          depth=len(self.runqueue))
        self.current = None
        self._slice_end = None
        self.state = CpuState.IDLE

        if outcome is _PREEMPTED:
            thread.state = ThreadState.READY
            thread.cpu = None
            self.kernel.place_thread(thread, preferred=self.cpu_id)
        elif outcome is _EXITED:
            self.kernel.finish_thread(thread)
        # _BLOCKED: the wake path will re-place the thread.

    # -- Instruction interpreters -----------------------------------------------

    def _run_one_instruction(self, thread):
        instruction, remaining = self._next_work(thread)
        if instruction is None:
            return _EXITED
        if self.instruction_hook is not None:
            self.instruction_hook(thread, instruction)

        if isinstance(instruction, Compute):
            return (yield from self._do_compute(thread, instruction, remaining))
        if isinstance(instruction, (KernelSection, Syscall)):
            return (yield from self._do_nonpreemptible(thread, instruction, remaining))
        if isinstance(instruction, Sleep):
            return self._do_sleep(thread, instruction)
        if isinstance(instruction, WaitEvent):
            return self._do_wait_event(thread, instruction)
        if isinstance(instruction, LockAcquire):
            return (yield from self._do_lock_acquire(thread, instruction))
        if isinstance(instruction, LockRelease):
            instruction.lock.release(thread)
            self._finish_instruction(thread, None)
            return _DONE
        if isinstance(instruction, YieldCPU):
            self._finish_instruction(thread, None)
            return _PREEMPTED if not self.runqueue.is_empty else _DONE
        if isinstance(instruction, Exit):
            thread.exit_value = instruction.value
            self._finish_instruction(thread, None)
            if hasattr(thread.body, "close"):
                thread.body.close()
            return _EXITED
        raise TypeError(f"unknown instruction {instruction!r}")

    def _next_work(self, thread):
        """Return (instruction, remaining_ns), resuming a preempted one."""
        if thread.current_instruction is not None:
            return thread.current_instruction, thread.remaining_ns
        try:
            if thread.started and hasattr(thread.body, "send"):
                instruction = thread.body.send(thread.pending_result)
            else:
                # First advance, or a plain iterator body (no send protocol).
                thread.started = True
                instruction = next(thread.body)
        except StopIteration as stop:
            thread.exit_value = stop.value
            return None, 0
        thread.pending_result = None
        thread.current_instruction = instruction
        thread.remaining_ns = int(getattr(instruction, "ns", 0) * self.work_tax)
        return instruction, thread.remaining_ns

    def _finish_instruction(self, thread, result):
        thread.current_instruction = None
        thread.remaining_ns = 0
        thread.pending_result = result

    def _do_compute(self, thread, instruction, remaining):
        preempt_ok = not thread.holds_locks and self.preempt_depth == 0
        consumed = yield from self._advance(remaining, preempt_ok=preempt_ok)
        if consumed < remaining:
            thread.remaining_ns = remaining - consumed
            return _PREEMPTED
        self._finish_instruction(thread, None)
        return _DONE

    def _do_nonpreemptible(self, thread, instruction, remaining):
        if isinstance(instruction, Syscall) and remaining == 0:
            remaining = int(
                (instruction.entry_ns + instruction.body_ns + instruction.exit_ns)
                * self.work_tax
            )
            thread.remaining_ns = remaining
        self.preempt_depth += 1
        start = self.env.now
        try:
            yield from self._advance(remaining, preempt_ok=False)
        finally:
            self.preempt_depth -= 1
        self.nonpreemptible_ns += self.env.now - start
        self.kernel.record_nonpreemptible(self.env.now - start)
        self._finish_instruction(thread, None)
        return _DONE

    def _do_sleep(self, thread, instruction):
        kernel = self.kernel
        thread.state = ThreadState.BLOCKED
        thread.cpu = None

        def _wake(_event):
            kernel.wake_thread(thread)

        self.env.timeout(instruction.ns).callbacks.append(_wake)
        self._finish_instruction(thread, None)
        return _BLOCKED

    def _do_wait_event(self, thread, instruction):
        event = instruction.event
        if event.processed:
            self._finish_instruction(thread, event.value)
            return _DONE
        kernel = self.kernel
        thread.state = ThreadState.BLOCKED
        thread.cpu = None

        def _wake(ev):
            kernel.wake_thread(thread, result=ev.value)

        event.callbacks.append(_wake)
        self._finish_instruction(thread, None)
        thread.pending_result = None  # filled by wake_thread
        return _BLOCKED

    def _do_lock_acquire(self, thread, instruction):
        lock = instruction.lock
        yield from self._advance(self.kernel.params.lock_acquire_ns, preempt_ok=False)
        if lock.try_acquire(thread):
            self._finish_instruction(thread, None)
            return _DONE
        # Contended: spin with preemption disabled until handed the lock.
        handoff = lock.add_waiter(thread)
        self.preempt_depth += 1
        start = self.env.now
        try:
            yield from self._await(handoff, busy=True)
        finally:
            self.preempt_depth -= 1
        lock.total_wait_ns += self.env.now - start
        self._finish_instruction(thread, None)
        return _DONE

    # -- Preemption policy ---------------------------------------------------------

    def _should_preempt(self):
        """Would the scheduler take the CPU from the current thread now?"""
        thread = self.current
        if thread is None:
            return True
        if thread.holds_locks or self.preempt_depth > 0:
            return False
        if self._offline_requested:
            return True  # hotplug removal pending: vacate the CPU
        if not thread.can_run_on(self.cpu_id):
            return True  # affinity changed under it: migrate off
        waiting = self.runqueue.peek_class()
        if waiting is None:
            return self.kernel.softirq.pending(self)
        if thread.sched_class is SchedClass.REALTIME:
            return False  # FIFO realtime: nothing outranks it here
        if waiting is SchedClass.REALTIME:
            return True
        return self._slice_end is not None and self.env.now >= self._slice_end

    def _slice_expired_should_yield(self):
        return self.runqueue.peek_class() is not None

    def _extend_slice(self):
        self._slice_end = self.env.now + self.kernel.params.sched_slice_ns

    def __repr__(self):
        kind = "vCPU" if self.is_virtual else "pCPU"
        return f"<{kind} {self.cpu_id} {self.state.value} rq={len(self.runqueue)}>"
