"""The kernel façade: CPUs, threads, placement, hotplug, global stats."""

from dataclasses import dataclass

from repro.kernel.cpu import CPU
from repro.kernel.ipi import IPIController, IPIVector
from repro.kernel.runqueue import SchedClass
from repro.kernel.softirq import SoftirqSubsystem
from repro.kernel.spinlock import Spinlock
from repro.kernel.thread import KThread, ThreadState
from repro.metrics import LatencyRecorder, WelfordStats


@dataclass
class KernelParams:
    """Tunable costs of the OS model (defaults match commodity ARM cores)."""

    context_switch_ns: int = 1_200
    sched_slice_ns: int = 1_000_000        # 1 ms CFS-ish slice
    ipi_latency_ns: int = 500
    lock_acquire_ns: int = 100
    cpu_boot_ns: int = 200_000             # INIT/SIPI to online


class Kernel:
    """A single OS instance spanning a set of CPUs.

    Tai Chi's hybrid virtualization hinges on there being exactly *one* of
    these shared by physical and virtual CPUs; the type-2 baseline
    instantiates two (host + guest).
    """

    def __init__(self, env, params=None, name="smartnic-os", tracer=None):
        self.env = env
        self.params = params or KernelParams()
        self.name = name
        # The observability spine: default to the environment's tracer; an
        # explicit ``tracer`` argument (any object with ``.record`` and a
        # truthy ``.enabled``) overrides it for targeted captures.
        self.tracer = tracer if tracer is not None else env.tracer

        self.cpus = {}
        self.threads = {}
        self.ipi = IPIController(self, latency_ns=self.params.ipi_latency_ns)
        self.softirq = SoftirqSubsystem(self)

        self.sched_latency = LatencyRecorder(name="sched-latency")
        self.nonpreemptible = WelfordStats()
        self.finished_threads = 0
        self.steals = 0
        # ``hook(cpu) -> bool`` callbacks consulted when a physical CPU
        # finds nothing runnable (Tai Chi backs starving vCPUs here).
        self.idle_callbacks = []

        env.metrics.add_source(f"kernel.{name}", self.metrics_snapshot)

    # -- CPU management ----------------------------------------------------------

    def add_cpu(self, cpu_id, online=True, cpu_cls=CPU, **kwargs):
        """Create and register a CPU; offline CPUs await boot IPIs."""
        if cpu_id in self.cpus:
            raise ValueError(f"cpu id {cpu_id!r} already registered")
        cpu = cpu_cls(self, cpu_id, online=online, **kwargs)
        self.cpus[cpu_id] = cpu
        return cpu

    def register_cpu(self, cpu):
        """Register an externally constructed CPU (vCPU registration path)."""
        if cpu.cpu_id in self.cpus:
            raise ValueError(f"cpu id {cpu.cpu_id!r} already registered")
        self.cpus[cpu.cpu_id] = cpu
        return cpu

    def boot_cpu(self, cpu_id, from_cpu=None):
        """Bring an offline CPU online through INIT+STARTUP IPIs.

        This mirrors Figure 8a: Tai Chi registers vCPUs as offline native
        CPUs and sends boot IPIs which the orchestrator routes to them.
        """
        dst = self.cpus[cpu_id]
        self.ipi.send(from_cpu, dst, IPIVector.INIT)
        self.ipi.send(from_cpu, dst, IPIVector.STARTUP)

    def offline_cpu(self, cpu_id):
        """Gracefully take a physical CPU offline (hotplug remove).

        The executor parks at its next scheduling boundary; queued threads
        and pending softirqs migrate to surviving CPUs.  Returns False if
        the CPU is virtual (vCPUs go away via revocation, not hotplug) or
        already down.
        """
        cpu = self.cpus[cpu_id]
        if cpu.is_virtual:
            return False
        return cpu.request_offline()

    def on_cpu_online(self, cpu):
        if self.tracer.enabled:
            self.tracer.record(self.env.now, cpu.cpu_id, "cpu_online")

    def on_cpu_offline(self, cpu):
        """Hotplug teardown: migrate stranded work off a dead CPU.

        Queued threads are re-placed through normal wake placement, and
        pending softirqs are re-raised on the least-loaded online physical
        CPU (the Linux ``takeover_tasklets`` analogue) — without this, a
        TAICHI_VCPU dispatch raised just before the offline would strand
        its reserved vCPU forever.
        """
        if self.tracer.enabled:
            self.tracer.record(self.env.now, cpu.cpu_id, "cpu_offline")
        for thread in list(cpu.runqueue.threads()):
            if cpu.runqueue.dequeue(thread):
                self.place_thread(thread)
        orphans = self.softirq.drain(cpu)
        if orphans:
            survivors = [other for other in self.physical_cpus()
                         if other.online and other is not cpu]
            if survivors:
                target = min(survivors,
                             key=lambda c: (c.load(), str(c.cpu_id)))
                for vector, payload in orphans:
                    self.softirq.raise_softirq(target, vector, payload)

    def online_cpus(self):
        return [cpu for cpu in self.cpus.values() if cpu.online]

    def physical_cpus(self):
        return [cpu for cpu in self.cpus.values() if not cpu.is_virtual]

    def virtual_cpus(self):
        return [cpu for cpu in self.cpus.values() if cpu.is_virtual]

    # -- Thread management ---------------------------------------------------------

    def spawn(self, name, body, affinity=None, sched_class=SchedClass.FAIR,
              nice_weight=1.0):
        """Create a thread around generator ``body`` and make it runnable."""
        thread = KThread(
            name, body, affinity=affinity, sched_class=sched_class,
            nice_weight=nice_weight,
        )
        thread.done = self.env.event()
        self.threads[thread.tid] = thread
        self.place_thread(thread)
        return thread

    def place_thread(self, thread, preferred=None):
        """Enqueue a READY thread on the best allowed online CPU."""
        cpu = self.select_cpu(thread, preferred=preferred)
        if cpu is None:
            raise RuntimeError(
                f"no online CPU satisfies affinity {thread.affinity!r} "
                f"for {thread!r}"
            )
        cpu.enqueue(thread)
        if self.tracer.enabled:
            self.tracer.record(self.env.now, cpu.cpu_id, "enqueue",
                               thread=thread.name)
            self.tracer.record(self.env.now, cpu.cpu_id, "rq_depth",
                               depth=len(cpu.runqueue))

    def select_cpu(self, thread, preferred=None):
        """Wake placement: preferred CPU if idle-ish, else least loaded.

        A CPU parking for hotplug removal is a last resort: placing there
        just bounces the thread back through offline migration.  This runs
        on every thread wake, so it is a single pass over the CPUs with one
        ``placement_load()`` call each (was three list comprehensions).
        """
        can_run_on = thread.can_run_on
        first_idle = None            # first zero-load non-parking candidate
        best = None                  # least-loaded non-parking candidate
        best_key = None
        parking_first_idle = None    # same, among parking CPUs (last resort)
        parking_best = None
        parking_best_key = None
        for cpu in self.cpus.values():
            if not cpu.online or not can_run_on(cpu.cpu_id):
                continue
            load = cpu.placement_load()
            key = (load, str(cpu.cpu_id))
            if cpu.offline_pending:
                if load == 0 and parking_first_idle is None:
                    parking_first_idle = cpu
                if parking_best_key is None or key < parking_best_key:
                    parking_best, parking_best_key = cpu, key
            else:
                if load == 0 and first_idle is None:
                    first_idle = cpu
                if best_key is None or key < best_key:
                    best, best_key = cpu, key
        if best is None and parking_best is None:
            return None
        if preferred is not None:
            preferred_cpu = self.cpus.get(preferred)
            if (
                preferred_cpu is not None
                and preferred_cpu.online
                and not preferred_cpu.offline_pending
                and can_run_on(preferred)
                and preferred_cpu.placement_load() == 0
            ):
                return preferred_cpu
        if best is not None:
            return first_idle if first_idle is not None else best
        return parking_first_idle if parking_first_idle is not None \
            else parking_best

    def set_affinity(self, thread, cpu_ids):
        """Change a thread's CPU affinity at runtime (sched_setaffinity).

        A READY thread queued on a now-disallowed CPU is re-placed
        immediately; a RUNNING thread is kicked and migrates at its next
        preemption point; a BLOCKED thread is handled by wake placement.
        """
        thread.affinity = set(cpu_ids)
        if thread.state is ThreadState.READY:
            for cpu in self.cpus.values():
                if not thread.can_run_on(cpu.cpu_id):
                    if cpu.runqueue.dequeue(thread):
                        self.place_thread(thread)
                        break
        elif thread.state is ThreadState.RUNNING and thread.cpu is not None:
            if not thread.can_run_on(thread.cpu.cpu_id):
                thread.cpu.kick()

    def wake_thread(self, thread, result=None):
        """Transition a BLOCKED thread to READY and place it."""
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.pending_result = result
        self.place_thread(thread, preferred=thread.last_cpu)

    def try_fill_idle(self, cpu):
        """Give an idling physical CPU something to do.

        First new-idle balancing (steal a waiting fair thread from a
        congested CPU or an unbacked vCPU), then any registered idle
        callbacks (Tai Chi uses these to back runnable vCPUs on dedicated
        CP pCPUs, the forward-progress guarantee of Section 4.1).
        Returns True if work was produced.
        """
        if cpu.is_virtual:
            return False
        if self.steal_work(cpu) is not None:
            return True
        for callback in self.idle_callbacks:
            if callback(cpu):
                return True
        return False

    def steal_work(self, idle_cpu):
        """Pull one waiting fair thread onto ``idle_cpu`` (newidle balance)."""
        from repro.kernel.runqueue import SchedClass

        for victim in self.cpus.values():
            if victim is idle_cpu or victim.runqueue.is_empty:
                continue
            unbacked_vcpu = victim.is_virtual and not getattr(
                victim, "is_backed", True)
            if not unbacked_vcpu and victim.load() < 2:
                continue
            for thread in victim.runqueue.threads():
                if (thread.sched_class is SchedClass.FAIR
                        and thread.can_run_on(idle_cpu.cpu_id)):
                    victim.runqueue.dequeue(thread)
                    self.steals += 1
                    idle_cpu.enqueue(thread)
                    return thread
        return None

    def finish_thread(self, thread):
        thread.state = ThreadState.EXITED
        thread.cpu = None
        self.finished_threads += 1
        self.threads.pop(thread.tid, None)
        if thread.done is not None and not thread.done.triggered:
            thread.done.succeed(thread.exit_value)
        if self.tracer.enabled:
            self.tracer.record(self.env.now, "-", "thread_exit", thread=thread.name)

    # -- Kernel objects ------------------------------------------------------------

    def spinlock(self, name="spinlock"):
        return Spinlock(self, name=name)

    # -- Statistics hooks ------------------------------------------------------------

    def record_sched_latency(self, latency_ns):
        self.sched_latency.record(latency_ns)

    def record_nonpreemptible(self, duration_ns):
        self.nonpreemptible.add(duration_ns)

    def total_busy_ns(self):
        return sum(cpu.busy_ns for cpu in self.cpus.values())

    def metrics_snapshot(self):
        """Kernel-wide stats for the metrics registry (lazy source)."""
        cpus = list(self.cpus.values())
        return {
            "cpus": len(cpus),
            "threads_live": len(self.threads),
            "threads_finished": self.finished_threads,
            "steals": self.steals,
            "context_switches": sum(cpu.context_switches for cpu in cpus),
            "softirq_runs": sum(cpu.softirq_runs for cpu in cpus),
            "busy_ns": sum(cpu.busy_ns for cpu in cpus),
            "idle_ns": sum(cpu.idle_ns for cpu in cpus),
            "nonpreemptible_ns": sum(cpu.nonpreemptible_ns for cpu in cpus),
            "max_rq_depth": max((len(cpu.runqueue) for cpu in cpus), default=0),
            "ipi_sent": self.ipi.sent_count,
            "ipi_delivered": self.ipi.delivered_count,
            "ipi_hooked": self.ipi.hooked_count,
            "ipi_dropped_offline": self.ipi.dropped_offline,
            "ipi_dropped_fault": self.ipi.dropped_fault,
            "softirq_raised": self.softirq.raised_count,
            "softirq_executed": self.softirq.executed_count,
            "sched_latency": self.sched_latency.summary(),
        }

    def __repr__(self):
        return f"<Kernel {self.name!r} cpus={len(self.cpus)} threads={len(self.threads)}>"
