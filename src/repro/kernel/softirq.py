"""Softirq subsystem.

Softirqs are per-CPU deferred-work vectors.  A handler is registered per
vector and runs *in the context of whichever thread is current* on the CPU,
at instruction boundaries (the model's analogue of irq-exit/do_softirq
points).  Tai Chi's vCPU scheduler performs pCPU→vCPU context switching
inside a dedicated softirq handler (Section 4.1), so the handler interface
supports generator handlers that consume simulated time.
"""

import enum
from collections import deque


class SoftirqVector(enum.Enum):
    TIMER = "timer"
    NET_RX = "net_rx"
    TASKLET = "tasklet"
    TAICHI_VCPU = "taichi_vcpu"


class SoftirqSubsystem:
    """Registry of softirq handlers plus per-CPU pending queues."""

    def __init__(self, kernel):
        self.kernel = kernel
        self._handlers = {}
        self._pending = {}
        self.raised_count = 0
        self.executed_count = 0

    def register(self, vector, handler):
        """Register ``handler(cpu, payload)`` for ``vector``.

        The handler may be a plain callable or a generator function; a
        generator handler is driven by the CPU executor and may yield
        simulation events (consuming time on that CPU).
        """
        self._handlers[vector] = handler

    def raise_softirq(self, cpu, vector, payload=None):
        """Mark ``vector`` pending on ``cpu`` and nudge its executor."""
        self._pending.setdefault(cpu.cpu_id, deque()).append((vector, payload))
        self.raised_count += 1
        tracer = self.kernel.tracer
        if tracer.enabled:
            tracer.record(self.kernel.env.now, cpu.cpu_id, "softirq_raise",
                          vector=vector.value)
        cpu.kick()

    def pending(self, cpu):
        """True if the CPU has undelivered softirqs."""
        return bool(self._pending.get(cpu.cpu_id))

    def drain(self, cpu):
        """Remove and return all pending ``(vector, payload)`` entries.

        Used by CPU hotplug teardown so deferred work raised on a dying
        CPU can be taken over by a surviving one.
        """
        queue = self._pending.pop(cpu.cpu_id, None)
        return list(queue) if queue else []

    def run_pending(self, cpu):
        """Generator: execute all pending softirqs on ``cpu`` in order."""
        queue = self._pending.get(cpu.cpu_id)
        tracer = self.kernel.tracer
        while queue:
            vector, payload = queue.popleft()
            handler = self._handlers.get(vector)
            if handler is None:
                continue
            self.executed_count += 1
            if tracer.enabled:
                tracer.record(self.kernel.env.now, cpu.cpu_id, "softirq_run",
                              vector=vector.value)
            result = handler(cpu, payload)
            if result is not None and hasattr(result, "__next__"):
                yield from result
