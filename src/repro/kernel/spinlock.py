"""Spinlocks with realistic contention behaviour.

Acquisition with the lock free is cheap; contention burns CPU in a
preemption-disabled busy-wait.  Lock hold/release is tracked per thread so
Tai Chi's vCPU scheduler can detect preempted lock holders (Section 4.1's
"safe CP-to-DP scheduling in lock context").
"""

from collections import deque


class Spinlock:
    """A kernel spinlock.

    Attributes:
        owner: the :class:`~repro.kernel.thread.KThread` holding the lock.
        waiters: FIFO of (thread, event) pairs spinning on the lock.
    """

    def __init__(self, kernel, name="spinlock"):
        self.kernel = kernel
        self.name = name
        self.owner = None
        self.waiters = deque()
        self.acquisitions = 0
        self.contentions = 0
        self.total_wait_ns = 0

    @property
    def locked(self):
        return self.owner is not None

    def try_acquire(self, thread):
        """Take the lock if free; returns True on success."""
        if self.owner is None:
            self.owner = thread
            thread.locks_held.append(self)
            self.acquisitions += 1
            return True
        return False

    def add_waiter(self, thread):
        """Register a spinning waiter; returns the event fired on handoff."""
        event = self.kernel.env.event()
        self.waiters.append((thread, event))
        self.contentions += 1
        return event

    def release(self, thread):
        """Release the lock, handing it directly to the next spinner."""
        if self.owner is not thread:
            raise RuntimeError(
                f"{thread!r} releasing {self.name!r} owned by {self.owner!r}"
            )
        thread.locks_held.remove(self)
        if self.waiters:
            next_thread, event = self.waiters.popleft()
            self.owner = next_thread
            next_thread.locks_held.append(self)
            self.acquisitions += 1
            event.succeed()
        else:
            self.owner = None

    def __repr__(self):
        state = f"held by {self.owner.name}" if self.owner else "free"
        return f"<Spinlock {self.name!r} {state} waiters={len(self.waiters)}>"
