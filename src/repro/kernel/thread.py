"""Kernel threads: schedulable entities with affinity and run statistics."""

import enum
from itertools import count

_thread_ids = count(1)


class ThreadState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class KThread:
    """A thread whose behaviour is a generator of instructions.

    Attributes:
        name: human-readable identifier.
        body: generator yielding :mod:`~repro.kernel.instructions` objects.
        affinity: set of CPU ids the thread may run on (``None`` = any).
        sched_class: realtime (DP services) or fair (everything else).
        nice_weight: CFS weight; higher weight accrues vruntime more slowly.
        pinned_cpu: resolved home CPU, if single-CPU affinity.
    """

    __slots__ = ("tid", "name", "body", "affinity", "sched_class",
                 "nice_weight", "state", "cpu", "last_cpu", "vruntime",
                 "total_runtime_ns", "wait_since_ns", "exit_value",
                 "current_instruction", "remaining_ns", "pending_result",
                 "started", "locks_held", "done")

    def __init__(self, name, body, affinity=None, sched_class=None, nice_weight=1.0):
        from repro.kernel.runqueue import SchedClass

        self.tid = next(_thread_ids)
        self.name = name
        self.body = body
        self.affinity = set(affinity) if affinity is not None else None
        self.sched_class = sched_class if sched_class is not None else SchedClass.FAIR
        self.nice_weight = float(nice_weight)

        self.state = ThreadState.NEW
        self.cpu = None                  # CPU currently running this thread
        self.last_cpu = None             # last CPU it ran on (for wake placement)
        self.vruntime = 0.0
        self.total_runtime_ns = 0
        self.wait_since_ns = None        # when it became READY (for latency stats)
        self.exit_value = None

        # In-flight instruction bookkeeping: when a thread is preempted in
        # the middle of a timed instruction, the remaining nanoseconds are
        # stored here and consumed before the body is advanced again.
        self.current_instruction = None
        self.remaining_ns = 0
        self.pending_result = None        # result to send into body next time
        self.started = False

        # Lock accounting (spinlocks held), used by Tai Chi's lock-safe
        # CP-to-DP preemption rule.
        self.locks_held = []

        # Completion event (set by the kernel when spawned).
        self.done = None

    @property
    def holds_locks(self):
        return bool(self.locks_held)

    def can_run_on(self, cpu_id):
        return self.affinity is None or cpu_id in self.affinity

    def runnable_on(self, cpu_ids):
        if self.affinity is None:
            return True
        return bool(self.affinity & set(cpu_ids))

    def __repr__(self):
        return (
            f"<KThread {self.name!r} tid={self.tid} state={self.state.value} "
            f"class={self.sched_class.name}>"
        )
