"""A discrete-event model of the SmartNIC's native operating system.

The kernel substrate provides what Tai Chi's design manipulates:

* threads (:class:`~repro.kernel.thread.KThread`) whose bodies are Python
  generators yielding *instructions* — preemptible compute, non-preemptible
  kernel sections, syscalls, sleeps, lock operations;
* per-CPU executors (:class:`~repro.kernel.cpu.CPU`) interpreting those
  instructions with Linux-like preemption rules (kernel preemption is
  refused while a non-preemptible section or spinlock is in force);
* a run-queue scheduler with a realtime class (used by DP services) above a
  CFS-like fair class (used by CP tasks);
* softirqs, spinlocks, and an IPI controller whose send path can be hooked —
  the analogue of the kernel's ``x2apic_send_IPI``, which is exactly where
  Tai Chi's unified IPI orchestrator attaches;
* CPU hotplug, so vCPUs can be registered as initially-offline native CPUs
  and booted through INIT/SIPI-style IPIs.
"""

from repro.kernel.cpu import CPU, CpuState
from repro.kernel.instructions import (
    Compute,
    Exit,
    KernelSection,
    LockAcquire,
    LockRelease,
    Sleep,
    Syscall,
    WaitEvent,
    YieldCPU,
)
from repro.kernel.ipi import IPIController, IPIVector
from repro.kernel.kernel import Kernel, KernelParams
from repro.kernel.runqueue import RunQueue, SchedClass
from repro.kernel.softirq import SoftirqSubsystem, SoftirqVector
from repro.kernel.spinlock import Spinlock
from repro.kernel.thread import KThread, ThreadState

__all__ = [
    "CPU",
    "Compute",
    "CpuState",
    "Exit",
    "IPIController",
    "IPIVector",
    "Kernel",
    "KernelParams",
    "KernelSection",
    "KThread",
    "LockAcquire",
    "LockRelease",
    "RunQueue",
    "SchedClass",
    "Sleep",
    "SoftirqSubsystem",
    "SoftirqVector",
    "Spinlock",
    "Syscall",
    "ThreadState",
    "WaitEvent",
    "YieldCPU",
]
