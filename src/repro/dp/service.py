"""Poll-mode data-plane service (the loop of Figure 9)."""

from collections import deque
from dataclasses import dataclass

from repro.hw.packet import IORequest, PacketKind
from repro.kernel import Compute, KernelSection, WaitEvent
from repro.kernel.runqueue import SchedClass


@dataclass
class DPServiceParams:
    """Costs of the software half of the data plane."""

    poll_ns: int = 200                 # one empty rx_burst iteration
    burst: int = 32                    # max packets per rx_burst
    work_scale: float = 1.0            # per-packet cost multiplier (baselines
                                       # use it for emulation/RPC overheads)
    pollution_tax: float = 1.12        # cache/TLB refill slowdown after a vCPU ran
    pollution_window_ns: int = 20_000  # how much processing the tax applies to
    storage_device_ns: int = 20_000    # simulated NVMe round trip
    storage_completion_service_ns: int = 1_000


class DPService:
    """One DP service instance: a realtime poller pinned to one CPU."""

    def __init__(self, board, name, cpu_id, queue_ids, params=None, kind="net"):
        self.board = board
        self.env = board.env
        self.name = name
        self.cpu_id = cpu_id
        self.queue_ids = list(queue_ids)
        self.params = params or DPServiceParams()
        self.kind = kind
        self.tenant_id = None  # set by TenancyManager on multi-tenant boards

        self.rx_stores = [board.accelerator.queue_store(q) for q in self.queue_ids]
        self._device_rng = board.rng.stream(f"device-{name}")

        # Idle notification target (Tai Chi's software workload probe); the
        # static baseline leaves this unset, mirroring the <10-line
        # notify_idle_DP_CPU_cycles integration of Section 5.
        self.idle_notifier = None
        # Section 9 probe fusion: consult accelerator pipeline metadata
        # before yielding (set via TaiChiConfig.probe_fusion).
        self.probe_fusion = False

        # Metrics.
        self.packets_processed = 0
        self.processing_ns = 0
        self.idle_notifications = 0
        self.empty_poll_streaks = 0
        self.is_idle_blocked = False
        self._resume_event = None
        self._m_idle_yields = self.env.metrics.counter("dp.idle_yields")
        self.env.metrics.add_source(f"dp.{name}", self.metrics_snapshot)

        # Cache/TLB pollution bookkeeping.
        self._pollution_budget_ns = 0
        self._shutdown = False
        self._control_event = None

        # Fault injection + SLO-guard instrumentation.
        self._pending_stall_ns = 0
        self.stalls_injected = 0
        self._recent_waits = deque(maxlen=256)  # rx-ready -> dp-start, ns

        # In-flight when_nonempty watchers, withdrawn after every idle wait
        # so abandoned watchers don't pile up on the rx stores over a soak.
        self._arrival_watchers = []

        # Causal tracing: let the span tracker attribute rx-queue waits to
        # queued-behind service time on this poller thread.
        self.env.spans.register_dp_thread(name)

        self.thread = board.kernel.spawn(
            name, self._loop(), affinity={cpu_id},
            sched_class=SchedClass.REALTIME,
        )

    # -- Integration points -------------------------------------------------------

    def attach_idle_notifier(self, notifier):
        """Wire the software workload probe (Tai Chi deployment step)."""
        self.idle_notifier = notifier

    def note_vcpu_ran(self):
        """A vCPU slice just ran on this CPU; model cache/TLB pollution."""
        self._pollution_budget_ns = self.params.pollution_window_ns

    def resume_polling(self):
        """Return control to the poll loop after a donated slice ends.

        This is the "yield returns" moment of Figure 9: the service polls
        again, and only after the empty-poll threshold is re-crossed does
        it donate the CPU again — which is what keeps in-flight packets
        from being stranded behind back-to-back vCPU slices.
        """
        if self._resume_event is not None and not self._resume_event.triggered:
            self._resume_event.succeed()

    def shutdown(self):
        """Stop the poll loop at its next iteration (repartitioning)."""
        self._shutdown = True
        self.resume_polling()
        if self._control_event is not None and not self._control_event.triggered:
            self._control_event.succeed()

    def inject_stall(self, stall_ns):
        """Fault injection: hang the poll loop in a non-preemptible routine.

        The stall is consumed at the loop's next iteration (a kick wakes
        an idle-blocked loop immediately), modeling a DP service wedged
        inside kernel code with interrupts of no help.
        """
        self._pending_stall_ns += int(stall_ns)
        self.stalls_injected += 1
        self.resume_polling()
        if self._control_event is not None and not self._control_event.triggered:
            self._control_event.succeed()

    def recent_queue_wait_ns(self):
        """Recent per-packet rx-queue waits (SLO-guard breach signal)."""
        return list(self._recent_waits)

    def reset_queue_wait_window(self):
        """Drop accumulated wait samples (after a guard intervention)."""
        self._recent_waits.clear()

    def release_queue(self, queue_id):
        """Stop polling ``queue_id`` (its new owner adopts it next)."""
        if queue_id not in self.queue_ids:
            raise ValueError(f"{self.name} does not poll {queue_id!r}")
        index = self.queue_ids.index(queue_id)
        self.queue_ids.pop(index)
        self.rx_stores.pop(index)
        # Restart any in-flight idle wait so its arrival set shrinks.
        if self._control_event is not None and not self._control_event.triggered:
            self._control_event.succeed()
        self.resume_polling()

    def adopt_queue(self, queue_id):
        """Take over polling an existing accelerator queue."""
        self.queue_ids.append(queue_id)
        store = self.board.accelerator.queue_store(queue_id)
        self.rx_stores.append(store)
        self.board.accelerator.retarget_queue(queue_id, self.cpu_id)
        # Restart any in-flight idle wait so its arrival set includes the
        # adopted queue.
        if self._control_event is not None and not self._control_event.triggered:
            self._control_event.succeed()
        self.resume_polling()

    def utilization(self, window_ns):
        """Effective utilization: packet-processing time over the window."""
        if window_ns <= 0:
            return 0.0
        return min(self.processing_ns / window_ns, 1.0)

    def metrics_snapshot(self):
        """Per-service poll-loop occupancy stats (lazy registry source)."""
        snapshot = {
            "cpu_id": self.cpu_id,
            "packets_processed": self.packets_processed,
            "processing_ns": self.processing_ns,
            "idle_notifications": self.idle_notifications,
            "empty_poll_streaks": self.empty_poll_streaks,
        }
        if self.tenant_id is not None:
            snapshot["tenant_id"] = self.tenant_id
        return snapshot

    # -- The poll loop ---------------------------------------------------------------

    def _loop(self):
        params = self.params
        while not self._shutdown:
            if self._pending_stall_ns:
                stall_ns, self._pending_stall_ns = self._pending_stall_ns, 0
                self.is_idle_blocked = False
                yield KernelSection(stall_ns)
                continue
            batch = self._collect_batch()
            if batch:
                self.is_idle_blocked = False
                spans = self.env.spans
                for request in batch:
                    request.t_dp_start = self.env.now
                    if request.t_rx_ready is not None:
                        self._recent_waits.append(
                            self.env.now - request.t_rx_ready)
                    if spans.enabled and request.span_id is not None:
                        spans.end_dp(request, self.cpu_id)
                    cost = self._packet_cost(request)
                    yield Compute(cost)
                    self.processing_ns += cost
                    self.packets_processed += 1
                    self._finish_packet(request)
                continue

            arrival = self._arrival_event()
            control = self.env.event()
            self._control_event = control
            fast = self.env.config.fast_forward
            if self.idle_notifier is None:
                # Plain deployment: nothing to yield to; the real service
                # busy-polls until traffic shows up.  Fast path: jump the
                # clock straight to the next arrival/control event and
                # account the empty rx_bursts that would have happened.
                # Stepped path: one discrete event per empty poll.
                idle_since = self.env.now
                if fast:
                    yield WaitEvent(self.env.any_of([arrival, control]))
                    self.env.note_fast_forward(
                        (self.env.now - idle_since) // params.poll_ns)
                else:
                    wait = self.env.any_of([arrival, control])
                    self._arm_stepped_polls(wait, None, params.poll_ns)
                    yield WaitEvent(wait)
                self._cancel_arrival_watchers()
                self._control_event = None
                continue

            # Count empty polls up to the (adaptive) threshold, then notify.
            threshold = self.idle_notifier.threshold_for(self)
            n_polls = max(int(threshold), 1)
            budget_ns = n_polls * params.poll_ns
            idle_since = self.env.now
            if fast:
                # The whole empty-poll budget collapses into one timeout;
                # timing and the arrival/control race are identical to the
                # stepped chain (the last stepped tick lands exactly at
                # ``budget_ns``).
                timer = self.env.timeout(budget_ns)
                yield WaitEvent(self.env.any_of([arrival, timer, control]))
            else:
                timer = self.env.event()
                wait = self.env.any_of([arrival, timer, control])
                self._arm_stepped_polls(wait, n_polls, params.poll_ns,
                                        done=timer)
                yield WaitEvent(wait)
            self._cancel_arrival_watchers()
            if arrival.triggered or control.triggered or self._shutdown:
                if fast:
                    self.env.note_fast_forward(
                        (self.env.now - idle_since) // params.poll_ns)
                self._control_event = None
                continue  # traffic/control beat the threshold; count resets
            if fast:
                self.env.note_fast_forward(n_polls)
            self.empty_poll_streaks += 1
            if self.probe_fusion and self._pipeline_traffic_imminent():
                # Packets are already inside the accelerator pipeline:
                # yielding now would be an immediate false positive.
                self._control_event = None
                continue
            self.idle_notifications += 1
            self._m_idle_yields.inc()
            tracer = self.env.tracer
            if tracer.enabled:
                tracer.record(self.env.now, self.cpu_id, "dp_idle_yield",
                              service=self.name, threshold=threshold)
            self.is_idle_blocked = True
            self.idle_notifier.notify_idle(self)
            resume = self.env.event()
            self._resume_event = resume
            # No poll accounting here: the CPU is donated, the loop is not
            # running, so an idle-blocked wait skips nothing.
            yield WaitEvent(self.env.any_of(
                [self._arrival_event(), resume, control]))
            self._cancel_arrival_watchers()
            self._resume_event = None
            self._control_event = None
            self.is_idle_blocked = False

    def _pipeline_traffic_imminent(self):
        accelerator = self.board.accelerator
        return any(accelerator.queue_inflight(queue_id) > 0
                   for queue_id in self.queue_ids)

    def _collect_batch(self):
        batch = []
        for store in self.rx_stores:
            batch.extend(store.get_batch(self.params.burst))
        return batch

    def _arrival_event(self):
        events = [store.when_nonempty() for store in self.rx_stores]
        self._arrival_watchers = list(zip(self.rx_stores, events))
        if not events:
            return self.env.event()  # queue-less service: only control wakes it
        if len(events) == 1:
            return events[0]
        return self.env.any_of(events)

    def _cancel_arrival_watchers(self):
        """Withdraw watchers the finished wait no longer needs."""
        for store, event in self._arrival_watchers:
            if not event.triggered:
                store.cancel_nonempty(event)
        self._arrival_watchers = []

    def _arm_stepped_polls(self, wait, n_polls, poll_ns, done=None):
        """Reference ("stepped") idle engine: one event per empty rx_burst.

        Arms a self-re-arming chain of ``poll_ns`` timeouts at the pure
        event layer (no thread dispatch, so scheduler behaviour is
        untouched); after ``n_polls`` ticks it succeeds ``done`` — landing
        on exactly the instant the fast path's single analytic timeout
        fires.  With ``n_polls=None`` the chain re-arms until ``wait``
        triggers.  Only engine self-profiling distinguishes the two modes.
        """
        env = self.env

        def _arm(remaining):
            def _tick(_event, remaining=remaining):
                if wait.triggered:
                    return
                if remaining is not None and remaining <= 1:
                    done.succeed()
                    return
                _arm(None if remaining is None else remaining - 1)

            env.timeout(poll_ns).callbacks.append(_tick)

        _arm(n_polls)

    def _packet_cost(self, request):
        cost = int(request.service_ns * self.params.work_scale)
        if self._pollution_budget_ns > 0:
            self._pollution_budget_ns -= cost
            cost = int(cost * self.params.pollution_tax)
        return max(cost, 1)

    # -- Completion paths --------------------------------------------------------------

    def _finish_packet(self, request):
        env = self.env
        if request.kind is PacketKind.NET_TX:
            self.board.nic_port.transfer(
                request.size_bytes,
                on_delivered=lambda: request.complete(env.now),
            )
        elif request.kind is PacketKind.NET_RX:
            self.board.pcie.transfer(
                request.size_bytes,
                on_delivered=lambda: request.complete(env.now),
            )
        elif request.kind is PacketKind.STORAGE_SUBMIT:
            self._start_device_io(request)
        elif request.kind is PacketKind.STORAGE_COMPLETE:
            original = request.payload
            self.board.pcie.transfer(
                64,
                on_delivered=lambda: original.complete(env.now),
            )
        else:
            raise ValueError(f"unhandled packet kind {request.kind!r}")

    def _start_device_io(self, request):
        """Submit to the storage device; completion re-enters the rx queue."""
        env = self.env
        device_ns = int(self._device_rng.exponential(self.params.storage_device_ns))
        store = self.rx_stores[0]
        completion = IORequest(
            PacketKind.STORAGE_COMPLETE,
            size_bytes=64,
            queue_id=request.queue_id,
            service_ns=self.params.storage_completion_service_ns,
            payload=request,
        )

        def _complete(_event):
            completion.t_submit = env.now
            completion.t_rx_ready = env.now
            store.put(completion)

        env.timeout(max(device_ns, 1_000)).callbacks.append(_complete)

    def __repr__(self):
        return f"<DPService {self.name!r} cpu={self.cpu_id} kind={self.kind}>"


def deploy_dp_services(board, kind, cpu_ids=None, params=None,
                       queues_per_cpu=1, name_prefix=None):
    """Deploy one DP service per data-plane CPU, each with its own queues.

    Returns the list of services; rx queues are registered with the
    accelerator as ``(kind, cpu_index, queue_index)`` ids.
    """
    cpu_ids = list(cpu_ids if cpu_ids is not None else board.dp_cpu_ids)
    prefix = name_prefix or f"dp-{kind}"
    services = []
    for index, cpu_id in enumerate(cpu_ids):
        queue_ids = []
        for qidx in range(queues_per_cpu):
            queue_id = (kind, index, qidx)
            board.make_rx_queue(queue_id, cpu_id)
            queue_ids.append(queue_id)
        services.append(
            DPService(board, f"{prefix}{index}", cpu_id, queue_ids,
                      params=params, kind=kind)
        )
    return services
