"""Data-plane services: DPDK/SPDK-like poll-mode processors.

A :class:`~repro.dp.service.DPService` is a realtime thread pinned to one
data-plane CPU, busy-polling one or more accelerator rx queues with
``rte_eth_rx_burst`` semantics (Figure 9).  Consecutive empty polls are
counted; crossing the (adaptive) threshold raises the
``notify_idle_DP_CPU_cycles`` notification consumed by Tai Chi's software
workload probe.  Packet completion differs per traffic kind: network
packets leave via the NIC port or PCIe, storage submissions round-trip
through a device-latency stage and a completion-queue poll.
"""

from repro.dp.service import DPService, DPServiceParams, deploy_dp_services

__all__ = ["DPService", "DPServiceParams", "deploy_dp_services"]
